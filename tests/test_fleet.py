"""Fleet layer: scenarios, routing policies, sharded simulation, batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.runner import simulate
from repro.fleet import (
    ClusterView,
    FleetScenario,
    FleetSimulation,
    fleet_member_seed,
    make_routing_policy,
    routing_policy_names,
    run_fleet_sweep,
    simulate_fleet,
)
from repro.fleet.routing import LeastLoaded, RandomWeighted, RoundRobin
from repro.workload.scenario import Scenario
from tests.conftest import make_task

ALL_POLICIES = routing_policy_names()

#: The documented configuration from docs/fleet.md / examples/fleet_routing.py
#: where the DLT-aware router beats blind cycling.
DOCUMENTED_FLEET = dict(
    n_clusters=4,
    system_load=0.6,
    total_time=100_000.0,
    seed=2007,
    nodes=8,
    cluster_spread=0.8,
)


def small_fleet(policy: str = "round-robin", **overrides) -> FleetScenario:
    """A fast heterogeneous 2-cluster fleet for unit tests."""
    kwargs = dict(
        n_clusters=2,
        system_load=0.6,
        total_time=30_000.0,
        seed=1234,
        policy=policy,
        nodes=4,
        cluster_spread=0.6,
    )
    kwargs.update(overrides)
    return FleetScenario.uniform(**kwargs)


class TestFleetScenario:
    def test_uniform_shapes(self):
        fs = small_fleet()
        assert fs.n_clusters == 2
        assert fs.total_nodes == 8
        assert all(isinstance(c, ClusterProfile) for c in fs.clusters)

    def test_cluster_spread_orders_fast_to_slow(self):
        fs = small_fleet()
        costs = [c.cps_vector[0] for c in fs.clusters]
        assert costs == sorted(costs)  # cluster 0 fastest (lowest cost)

    def test_stream_rate_scales_with_fleet_size(self):
        one = FleetScenario.uniform(
            n_clusters=1, system_load=0.5, total_time=1000.0, seed=1
        )
        four = FleetScenario.uniform(
            n_clusters=4, system_load=0.5, total_time=1000.0, seed=1
        )
        ratio = (
            one.workload.arrivals.mean_interarrival
            / four.workload.arrivals.mean_interarrival
        )
        assert ratio == pytest.approx(4.0)

    def test_member_seed_zero_is_identity(self):
        assert fleet_member_seed(99, 0) == 99
        assert fleet_member_seed(99, 1) != 99
        assert fleet_member_seed(99, 1) != fleet_member_seed(99, 2)
        assert fleet_member_seed(99, 1) == fleet_member_seed(99, 1)

    def test_from_scenarios(self):
        s = Scenario.paper_baseline(system_load=0.5, total_time=1000.0, seed=3)
        fs = FleetScenario.from_scenarios([s, s], policy="least-loaded")
        assert fs.n_clusters == 2
        assert fs.seed == 3
        assert fs.workload == s.workload
        assert fs.policy == "least-loaded"

    def test_validation_rejects_bad_inputs(self):
        s = Scenario.paper_baseline(system_load=0.5, total_time=1000.0, seed=3)
        with pytest.raises(InvalidParameterError):
            FleetScenario(
                clusters=(), workload=s.workload, total_time=1000.0, seed=1
            )
        with pytest.raises(InvalidParameterError):
            FleetScenario(
                clusters=(s.cluster,),
                workload=s.workload,
                total_time=1000.0,
                seed=1,
                policy="no-such-policy",
            )
        with pytest.raises(InvalidParameterError):
            FleetScenario.uniform(
                n_clusters=0, system_load=0.5, total_time=1000.0, seed=1
            )

    def test_describe_is_flat(self):
        d = small_fleet().describe()
        assert d["clusters"] == 2
        assert d["policy"] == "round-robin"
        for value in d.values():
            assert isinstance(value, (int, float, str))

    def test_picklable(self):
        import pickle

        fs = small_fleet("earliest-finish")
        assert pickle.loads(pickle.dumps(fs)) == fs


class TestRoutingPolicies:
    @staticmethod
    def _views(n: int, outstanding=None, capacity=None) -> list[ClusterView]:
        return [
            ClusterView(
                index=i,
                nodes=4,
                capacity=1.0 if capacity is None else capacity[i],
                outstanding=0 if outstanding is None else outstanding[i],
                backlog=0.0,
                busy_time=0.0,
                probe=lambda task: None,
            )
            for i in range(n)
        ]

    def test_round_robin_cycles(self):
        policy = RoundRobin()
        views = self._views(3)
        picks = [policy.route(make_task(task_id=i), views) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_least_loaded_prefers_empty(self):
        policy = LeastLoaded()
        views = self._views(3, outstanding=[2, 0, 1])
        assert policy.route(make_task(), views) == 1

    def test_random_weighted_is_seeded(self):
        views = self._views(3, capacity=[1.0, 2.0, 1.0])
        picks_a = [
            RandomWeighted(np.random.default_rng(5)).route(make_task(), views)
            for _ in range(10)
        ]
        picks_b = [
            RandomWeighted(np.random.default_rng(5)).route(make_task(), views)
            for _ in range(10)
        ]
        assert picks_a == picks_b

    def test_make_routing_policy_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            make_routing_policy("no-such-policy")

    def test_registry_names_sorted(self):
        assert list(ALL_POLICIES) == sorted(ALL_POLICIES)
        assert "earliest-finish" in ALL_POLICIES


class TestSingleClusterEquivalence:
    """A 1-cluster fleet must be the single-cluster run, bit for bit.

    This holds for every policy, learning ones included — a bandit still
    routes every task to the only cluster; its ``learning_regret`` (arms
    legitimately differ in which tasks they drew) is the one metrics
    field a single-cluster run does not have.
    """

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("algorithm", ["EDF-DLT", "EDF-UserSplit"])
    def test_bit_identical(self, policy, algorithm):
        from dataclasses import replace

        fs = FleetScenario.uniform(
            n_clusters=1,
            system_load=0.6,
            total_time=40_000.0,
            seed=77,
            policy=policy,
        )
        fleet_out = simulate_fleet(fs, algorithm)
        single_out = simulate(fs.stream_scenario(), algorithm)

        assert replace(fleet_out.metrics, learning_regret=0.0) == single_out.metrics
        f_records = fleet_out.outputs[0].records
        s_records = single_out.output.records
        assert list(f_records) == list(s_records)
        for tid in f_records:
            fr, sr = f_records[tid], s_records[tid]
            assert fr.outcome == sr.outcome
            assert fr.est_completion == sr.est_completion
            assert fr.actual_completion == sr.actual_completion
            assert fr.node_ids == sr.node_ids
        assert np.array_equal(
            fleet_out.outputs[0].node_busy_time, single_out.output.node_busy_time
        )


class TestFleetSimulation:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_same_seed_same_results(self, policy):
        fs = small_fleet(policy)
        out_a = simulate_fleet(fs, "EDF-DLT")
        out_b = simulate_fleet(fs, "EDF-DLT")
        assert out_a.metrics == out_b.metrics
        assert out_a.assignments == out_b.assignments
        assert out_a.per_cluster == out_b.per_cluster

    def test_all_stream_tasks_routed_exactly_once(self):
        fs = small_fleet("least-loaded")
        out = simulate_fleet(fs, "EDF-DLT")
        stream = fs.stream_scenario().generate_tasks()
        assert len(out.assignments) == len(stream)
        assert sum(out.routed_counts) == len(stream)
        routed_ids = sorted(
            tid for o in out.outputs for tid in o.records
        )
        assert routed_ids == [t.task_id for t in stream]

    def test_round_robin_splits_evenly(self):
        out = simulate_fleet(small_fleet("round-robin"), "EDF-DLT")
        counts = out.routed_counts
        assert max(counts) - min(counts) <= 1

    def test_pooled_metrics_match_member_counters(self):
        out = simulate_fleet(small_fleet("random-weighted"), "EDF-DLT")
        assert out.metrics.arrivals == sum(m.arrivals for m in out.per_cluster)
        assert out.metrics.rejected == sum(m.rejected for m in out.per_cluster)
        expected_rr = (
            out.metrics.rejected / out.metrics.arrivals
            if out.metrics.arrivals
            else 0.0
        )
        assert out.reject_ratio == pytest.approx(expected_rr)
        # capacity-weighted utilization (equal-size members → plain mean)
        assert out.metrics.utilization == pytest.approx(
            float(np.mean([m.utilization for m in out.per_cluster]))
        )

    def test_validator_armed_on_every_member(self):
        out = simulate_fleet(small_fleet("earliest-finish"), "EDF-DLT")
        for member in out.outputs:
            assert member.validation.ok
            assert member.validation.checked_tasks >= 0
        assert out.metrics.deadline_misses == 0

    def test_runs_once(self):
        sim = FleetSimulation(small_fleet(), "EDF-DLT")
        sim.run()
        with pytest.raises(InvalidParameterError):
            sim.run()

    def test_trace_flag_reaches_members(self):
        out = simulate_fleet(small_fleet(), "EDF-DLT", trace=True)
        assert any(o.traces for o in out.outputs)
        untraced = simulate_fleet(small_fleet(), "EDF-DLT")
        assert all(not o.traces for o in untraced.outputs)

    def test_earliest_finish_beats_round_robin_documented_config(self):
        """The documented headline configuration (docs/fleet.md)."""
        base = FleetScenario.uniform(**DOCUMENTED_FLEET)
        rr = simulate_fleet(base.with_policy("round-robin"), "EDF-DLT")
        ef = simulate_fleet(base.with_policy("earliest-finish"), "EDF-DLT")
        assert ef.reject_ratio < rr.reject_ratio
        # the win is substantial on this spread, not an ulp
        assert rr.reject_ratio - ef.reject_ratio > 0.05


class TestMemberOverrides:
    """Per-member algorithm / eager_release overrides on FleetScenario."""

    def test_override_tuples_validated(self):
        fs = small_fleet()
        with pytest.raises(InvalidParameterError):
            fs.with_member_overrides(algorithms=("EDF-DLT",))  # wrong length
        with pytest.raises(InvalidParameterError):
            fs.with_member_overrides(algorithms=("EDF-DLT", "no-such-algo"))
        with pytest.raises(InvalidParameterError):
            fs.with_member_overrides(eager_release=(True,))  # wrong length
        with pytest.raises(InvalidParameterError):
            fs.with_member_overrides(eager_release=(True, "yes"))

    def test_none_entries_fall_back_to_fleet_wide(self):
        fs = small_fleet().with_member_overrides(
            algorithms=(None, "FIFO-OPR-MN"), eager_release=(True, None)
        )
        assert fs.member_algorithm(0, "EDF-DLT") == "EDF-DLT"
        assert fs.member_algorithm(1, "EDF-DLT") == "FIFO-OPR-MN"
        assert fs.member_eager(0, False) is True
        assert fs.member_eager(1, False) is False

    def test_overrides_reach_member_simulations(self):
        fs = small_fleet().with_member_overrides(
            algorithms=(None, "FIFO-OPR-MN")
        )
        out = simulate_fleet(fs, "EDF-DLT")
        assert out.outputs[0].algorithm == "EDF-DLT"
        assert out.outputs[1].algorithm == "FIFO-OPR-MN"
        assert out.per_cluster[0].algorithm == "EDF-DLT"
        assert out.per_cluster[1].algorithm == "FIFO-OPR-MN"
        # the pooled summary names both member algorithms
        assert out.metrics.algorithm == "EDF-DLT+FIFO-OPR-MN"

    def test_overrides_change_results(self):
        base = small_fleet("round-robin")
        plain = simulate_fleet(base, "EDF-DLT")
        mixed = simulate_fleet(
            base.with_member_overrides(algorithms=(None, "FIFO-OPR-MN")),
            "EDF-DLT",
        )
        # same shared stream, but member 1 schedules differently
        assert plain.metrics != mixed.metrics

    def test_round_trips_through_runspec_and_workers(self):
        fs = small_fleet().with_member_overrides(
            algorithms=("EDF-DLT", "FIFO-OPR-MN"), eager_release=(False, True)
        )
        specs = [RunSpec(scenario=fs, algorithm="EDF-DLT")] * 2
        serial = BatchRunner().run(specs)
        process = BatchRunner(workers=2).run(specs)
        thread = BatchRunner(workers=2, workers_mode="thread").run(specs)
        assert serial.to_json() == process.to_json() == thread.to_json()
        assert serial[0].scenario.member_algorithms == ("EDF-DLT", "FIFO-OPR-MN")
        row = serial[0].to_dict()
        assert row["scenario_member_algorithms"] == "EDF-DLT,FIFO-OPR-MN"
        assert row["scenario_member_eager_release"] == "0,1"

    def test_describe_marks_overrides(self):
        fs = small_fleet().with_member_overrides(algorithms=(None, "EDF-OPR-MN"))
        d = fs.describe()
        assert d["member_algorithms"] == "-,EDF-OPR-MN"
        assert "member_eager_release" not in d
        for value in d.values():
            assert isinstance(value, (int, float, str))

    def test_picklable(self):
        import pickle

        fs = small_fleet().with_member_overrides(
            algorithms=(None, "EDF-OPR-MN"), eager_release=(True, None)
        )
        assert pickle.loads(pickle.dumps(fs)) == fs


class TestFleetBatch:
    def _specs(self, policies=("round-robin", "earliest-finish")):
        fs = small_fleet()
        return [
            RunSpec(
                scenario=fs.with_policy(p).with_seed(seed),
                algorithm="EDF-DLT",
                labels={"policy": p, "seed": seed},
            )
            for p in policies
            for seed in (1, 2)
        ]

    def test_serial_equals_parallel(self):
        specs = self._specs()
        serial = BatchRunner().run(specs)
        parallel = BatchRunner(workers=2).run(specs)
        threaded = BatchRunner(workers=2, workers_mode="thread").run(specs)
        assert serial.to_json() == parallel.to_json() == threaded.to_json()

    def test_records_flatten_with_fleet_coordinates(self):
        rows = BatchRunner().run(self._specs()).to_records()
        assert all(row["scenario_clusters"] == 2 for row in rows)
        assert {row["policy"] for row in rows} == {
            "round-robin",
            "earliest-finish",
        }

    def test_keep_output_returns_fleet_output(self):
        fs = small_fleet("least-loaded")
        [record] = BatchRunner().run(
            [RunSpec(scenario=fs, algorithm="EDF-DLT", keep_output=True)]
        )
        assert record.output is not None
        assert record.output.per_cluster[0].arrivals >= 0

    def test_run_fleet_sweep_grid(self):
        result = run_fleet_sweep(
            policies=("round-robin", "least-loaded"),
            cluster_counts=(1, 2),
            nodes=4,
            total_time=20_000.0,
            replications=2,
            cluster_spread=0.6,
        )
        assert set(result.table) == {
            (p, k) for p in ("round-robin", "least-loaded") for k in (1, 2)
        }
        assert result.ci("round-robin", 2).n == 2
        assert result.best_policy(2) in ("round-robin", "least-loaded")
        with pytest.raises(InvalidParameterError):
            result.ci("round-robin", 99)
