"""Learning layer: reward models, bandit routers, feedback, determinism."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.experiments.batch import BatchRunner, RunSpec
from repro.fleet import (
    FleetScenario,
    make_routing_policy,
    routing_policy_names,
    simulate_fleet,
    static_routing_policy_names,
)
from repro.learn import (
    ArmStats,
    EpsilonGreedy,
    LearnConfig,
    LearningReport,
    RejectPenaltyReward,
    RoutingFeedback,
    SlackWeightedReward,
    ThompsonSampling,
    UCB1,
    UtilizationWeightedReward,
    learning_policy_names,
    make_reward_model,
    reward_model_names,
)
from tests.test_fleet import DOCUMENTED_FLEET, small_fleet

BANDITS = learning_policy_names()
STATIC = static_routing_policy_names()

#: The example horizon from examples/adaptive_routing.py: the documented
#: 4-cluster spread-0.8 fleet run long enough for the bandits to converge.
EXAMPLE_FLEET = dict(DOCUMENTED_FLEET, total_time=400_000.0)


def feedback(**overrides) -> RoutingFeedback:
    """Terse feedback factory for reward-model unit tests."""
    base = dict(
        task_id=0,
        cluster=0,
        phase="admission",
        arrival=100.0,
        sigma=200.0,
        deadline=1_000.0,
        accepted=True,
    )
    base.update(overrides)
    return RoutingFeedback(**base)


class TestRegistry:
    def test_bandits_registered_alongside_static(self):
        names = routing_policy_names()
        for bandit in ("epsilon-greedy", "ucb1", "thompson"):
            assert bandit in names
        for static in STATIC:
            assert static in names

    def test_static_names_exclude_bandits(self):
        assert not set(BANDITS) & set(STATIC)

    def test_reward_model_names(self):
        assert reward_model_names() == (
            "reject-penalty",
            "slack-weighted",
            "utilization-weighted",
        )

    def test_make_reward_model_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            make_reward_model("no-such-reward")

    def test_make_routing_policy_builds_seeded_bandit(self):
        policy = make_routing_policy(
            "thompson",
            learn=LearnConfig(arms=("round-robin",)),
            learning_rng=np.random.default_rng(7),
        )
        assert isinstance(policy, ThompsonSampling)
        assert policy.learns
        assert policy.config.arms == ("round-robin",)


class TestLearnConfig:
    def test_defaults_valid(self):
        cfg = LearnConfig()
        assert cfg.resolved_arms() == STATIC

    def test_rejects_unknown_arm(self):
        with pytest.raises(InvalidParameterError):
            LearnConfig(arms=("no-such-policy",))

    def test_rejects_bandit_arm(self):
        with pytest.raises(InvalidParameterError):
            LearnConfig(arms=("ucb1",))

    def test_rejects_duplicate_arms(self):
        with pytest.raises(InvalidParameterError):
            LearnConfig(arms=("round-robin", "round-robin"))

    def test_rejects_arms_in_clusters_mode(self):
        with pytest.raises(InvalidParameterError):
            LearnConfig(mode="clusters", arms=("round-robin",))

    def test_rejects_bad_knobs(self):
        with pytest.raises(InvalidParameterError):
            LearnConfig(epsilon=1.5)
        with pytest.raises(InvalidParameterError):
            LearnConfig(ucb_c=0.0)
        with pytest.raises(InvalidParameterError):
            LearnConfig(mode="no-such-mode")
        with pytest.raises(InvalidParameterError):
            LearnConfig(reward="no-such-reward")

    def test_picklable_in_scenario(self):
        import pickle

        fs = small_fleet("ucb1").with_learn(LearnConfig(arms=("round-robin",)))
        assert pickle.loads(pickle.dumps(fs)) == fs

    def test_scenario_rejects_non_config(self):
        with pytest.raises(InvalidParameterError):
            small_fleet().with_learn("reject-penalty")  # type: ignore[arg-type]


class TestRewardModels:
    def test_reject_penalty_resolves_at_admission(self):
        model = RejectPenaltyReward()
        assert model.reward(feedback(accepted=True)) == 1.0
        assert model.reward(feedback(accepted=False)) == 0.0

    def test_slack_weighted_defers_until_completion(self):
        model = SlackWeightedReward()
        assert model.reward(feedback(accepted=False)) == 0.0
        assert model.reward(feedback(accepted=True)) is None  # waits
        half = model.reward(
            feedback(
                phase="completion",
                actual_completion=600.0,  # slack 500 of a 1000 window
                deadline_met=True,
            )
        )
        assert half == pytest.approx(0.75)
        instant = model.reward(
            feedback(phase="completion", actual_completion=100.0, deadline_met=True)
        )
        assert instant == pytest.approx(1.0)
        missed = model.reward(
            feedback(phase="completion", actual_completion=2_000.0, deadline_met=False)
        )
        assert missed == 0.0

    def test_utilization_weighted_discounts_backlog(self):
        model = UtilizationWeightedReward()
        assert model.reward(feedback(accepted=False)) == 0.0
        idle = model.reward(feedback(backlog=0.0))
        deep = model.reward(feedback(backlog=1_000.0))  # one deadline window
        assert idle == pytest.approx(1.0)
        assert deep == pytest.approx(0.5)
        assert model.reward(feedback(backlog=10_000.0)) < deep


class TestSelectionRules:
    def _resolve(self, policy, arm: int, reward: float, task_id: int) -> None:
        policy._pending[task_id] = arm
        policy.observe(
            feedback(task_id=task_id, accepted=reward > 0.0)
        )

    def test_ucb1_sweeps_arms_then_exploits(self):
        policy = UCB1(config=LearnConfig(arms=("round-robin", "least-loaded")))
        policy._ensure_arms(2)
        assert policy.select_arm() == 0  # unpulled arms first, index order
        self._resolve(policy, 0, 1.0, task_id=0)
        assert policy.select_arm() == 1
        self._resolve(policy, 1, 0.0, task_id=1)
        # arm 0 resolved 1.0 vs arm 1 resolved 0.0 -> exploit arm 0
        assert policy.select_arm() == 0

    def test_epsilon_zero_is_greedy_and_deterministic(self):
        policy = EpsilonGreedy(
            config=LearnConfig(arms=("round-robin", "least-loaded"), epsilon=0.0),
            rng=np.random.default_rng(1),
        )
        policy._ensure_arms(2)
        assert policy.select_arm() == 0  # optimistic sweep, index order
        self._resolve(policy, 0, 0.0, task_id=0)
        assert policy.select_arm() == 1
        self._resolve(policy, 1, 1.0, task_id=1)
        assert policy.select_arm() == 1  # greedy on the better mean

    def test_thompson_is_seeded(self):
        def picks(seed):
            policy = ThompsonSampling(
                config=LearnConfig(), rng=np.random.default_rng(seed)
            )
            policy._ensure_arms(4)
            return [policy.select_arm() for _ in range(20)]

        assert picks(5) == picks(5)

    def test_delayed_rewards_spread_cold_start_pulls(self):
        """With completion-phase rewards, the sweep must not hammer arm 0.

        Before any reward resolves (slack-weighted defers accepted tasks
        to completion), consecutive decisions must spread over the
        data-less arms by fewest in-flight pulls instead of repeatedly
        pulling the lowest index.
        """
        policy = UCB1(
            config=LearnConfig(
                arms=("round-robin", "least-loaded", "earliest-finish"),
                reward="slack-weighted",
            )
        )
        policy._ensure_arms(3)
        picks = []
        for task_id in range(6):
            arm = policy.select_arm()
            policy._pending[task_id] = arm
            policy._inflight[arm] += 1
            picks.append(arm)
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_unresolved_feedback_keeps_pending(self):
        policy = UCB1(config=LearnConfig(reward="slack-weighted"))
        policy._ensure_arms(2)
        policy._pending[7] = 0
        policy.observe(feedback(task_id=7, accepted=True))  # defers
        assert 7 in policy._pending
        policy.observe(
            feedback(
                task_id=7,
                phase="completion",
                actual_completion=500.0,
                deadline_met=True,
            )
        )
        assert 7 not in policy._pending
        assert policy.report().resolved == 1


class TestLearningReport:
    def test_regret_is_hindsight_pseudo_regret(self):
        report = LearningReport(
            policy="ucb1",
            reward_model="reject-penalty",
            arms=(
                ArmStats(name="a", pulls=8, total_reward=8.0),  # mean 1.0
                ArmStats(name="b", pulls=2, total_reward=1.0),  # mean 0.5
            ),
            decisions=10,
            resolved=10,
        )
        assert report.best_arm == "a"
        assert report.cumulative_regret == pytest.approx(1.0)  # 10*1.0 - 9.0
        flat = report.as_dict()
        assert flat["pulls[a]"] == 8
        assert flat["mean_reward[b]"] == pytest.approx(0.5)

    def test_empty_report_is_zero(self):
        report = LearningReport(
            policy="ucb1", reward_model="reject-penalty", arms=(),
            decisions=0, resolved=0,
        )
        assert report.cumulative_regret == 0.0
        assert report.best_arm == ""


class TestFleetIntegration:
    @pytest.mark.parametrize("bandit", BANDITS)
    def test_bandit_runs_and_reports(self, bandit):
        out = simulate_fleet(small_fleet(bandit), "EDF-DLT")
        report = out.learning
        assert report is not None
        assert report.policy == bandit
        assert report.decisions == out.metrics.arrivals
        assert report.resolved == out.metrics.arrivals  # all rewards land
        assert report.cumulative_regret >= 0.0
        assert out.metrics.learning_regret == report.cumulative_regret

    def test_static_policy_has_no_learning(self):
        out = simulate_fleet(small_fleet("round-robin"), "EDF-DLT")
        assert out.learning is None
        assert out.metrics.learning_regret == 0.0

    @pytest.mark.parametrize("reward", reward_model_names())
    def test_every_reward_model_resolves_fully(self, reward):
        fs = small_fleet("thompson").with_learn(LearnConfig(reward=reward))
        out = simulate_fleet(fs, "EDF-DLT")
        assert out.learning is not None
        assert out.learning.reward_model == reward
        assert out.learning.resolved == out.metrics.arrivals

    def test_clusters_mode_arms_are_members(self):
        fs = small_fleet("ucb1").with_learn(LearnConfig(mode="clusters"))
        out = simulate_fleet(fs, "EDF-DLT")
        assert out.learning is not None
        assert [a.name for a in out.learning.arms] == ["cluster-0", "cluster-1"]
        assert sum(a.pulls for a in out.learning.arms) == out.metrics.arrivals

    def test_learning_regret_reaches_batch_exports(self):
        fs = small_fleet("epsilon-greedy")
        [record] = BatchRunner().run([RunSpec(scenario=fs, algorithm="EDF-DLT")])
        row = record.to_dict()
        assert "learning_regret" in row
        assert record.value("learning_regret") >= 0.0

    def test_learn_config_reaches_describe(self):
        fs = small_fleet("ucb1").with_learn(LearnConfig(arms=("round-robin",)))
        d = fs.describe()
        assert d["learn_arms"] == "round-robin"
        assert d["learn_reward"] == "reject-penalty"
        for value in d.values():
            assert isinstance(value, (int, float, str))


class TestPinnedArmParity:
    """A single-arm bandit must replay the static policy, record by record.

    Same spirit as the 1-cluster fleet equivalence check: the learning
    layer may add bookkeeping, but a pinned bandit's routing decisions —
    including the stochastic ``random-weighted`` arm's draws — are the
    static policy's, bit for bit.
    """

    @pytest.mark.parametrize("arm", STATIC)
    @pytest.mark.parametrize("bandit", BANDITS)
    def test_pinned_bandit_matches_static(self, bandit, arm):
        base = small_fleet()
        pinned = base.with_policy(bandit).with_learn(LearnConfig(arms=(arm,)))
        bandit_out = simulate_fleet(pinned, "EDF-DLT")
        static_out = simulate_fleet(base.with_policy(arm), "EDF-DLT")

        assert bandit_out.assignments == static_out.assignments
        assert (
            replace(bandit_out.metrics, learning_regret=0.0)
            == static_out.metrics
        )
        for b_out, s_out in zip(bandit_out.outputs, static_out.outputs):
            assert list(b_out.records) == list(s_out.records)
            for tid in b_out.records:
                br, sr = b_out.records[tid], s_out.records[tid]
                assert br.outcome == sr.outcome
                assert br.est_completion == sr.est_completion
                assert br.actual_completion == sr.actual_completion
                assert br.node_ids == sr.node_ids
            assert np.array_equal(b_out.node_busy_time, s_out.node_busy_time)

    def test_single_arm_regret_is_zero(self):
        pinned = small_fleet("ucb1").with_learn(
            LearnConfig(arms=("earliest-finish",))
        )
        out = simulate_fleet(pinned, "EDF-DLT")
        assert out.metrics.learning_regret == 0.0


class TestConvergence:
    """The acceptance bar: bandits converge on the documented fleet.

    On the documented 4-cluster spread-0.8 configuration over the example
    horizon (examples/adaptive_routing.py), each bandit's reject ratio is
    at most the worst static policy's and within 10% of the best's.
    """

    @pytest.fixture(scope="class")
    def static_ratios(self):
        base = FleetScenario.uniform(**EXAMPLE_FLEET)
        return {
            policy: simulate_fleet(base.with_policy(policy), "EDF-DLT").reject_ratio
            for policy in STATIC
        }

    @pytest.mark.parametrize("bandit", BANDITS)
    def test_bandit_converges_to_best_static(self, bandit, static_ratios):
        base = FleetScenario.uniform(**EXAMPLE_FLEET)
        out = simulate_fleet(base.with_policy(bandit), "EDF-DLT")
        best = min(static_ratios.values())
        worst = max(static_ratios.values())
        assert out.reject_ratio <= worst, (
            f"{bandit} ({out.reject_ratio:.4f}) worse than the worst "
            f"static policy ({worst:.4f})"
        )
        assert out.reject_ratio <= best * 1.10, (
            f"{bandit} ({out.reject_ratio:.4f}) not within 10% of the "
            f"best static policy ({best:.4f})"
        )
        # The bandits should also identify the documented winner.
        assert out.learning is not None
        assert out.learning.best_arm == min(static_ratios, key=static_ratios.get)


# ---------------------------------------------------------------------------
# Property-based determinism (hypothesis)
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402  (gated import)

#: Small, fast learning-scenario space: breadth over policies, rewards,
#: modes and seeds — not scale.
learn_case_strategy = st.fixed_dictionaries(
    {
        "policy": st.sampled_from(BANDITS),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "n_clusters": st.integers(min_value=1, max_value=3),
        "reward": st.sampled_from(reward_model_names()),
        "mode": st.sampled_from(("policies", "clusters")),
    }
)


def _learn_scenario(case) -> FleetScenario:
    return FleetScenario.uniform(
        n_clusters=case["n_clusters"],
        system_load=0.7,
        total_time=15_000.0,
        seed=case["seed"],
        policy=case["policy"],
        nodes=4,
        cluster_spread=0.5,
        learn=LearnConfig(reward=case["reward"], mode=case["mode"]),
    )


@settings(max_examples=10, deadline=None)
@given(case=learn_case_strategy)
def test_learning_bit_identical_across_executor_modes(case):
    """Every repro.learn policy: serial == process == thread, bit for bit.

    The whole learning state (bandit draws, reward resolution order,
    regret) must derive from the fleet seed alone — the executor that
    happens to run the spec must not matter.
    """
    spec = RunSpec(
        scenario=_learn_scenario(case), algorithm="EDF-DLT", keep_output=True
    )
    serial = BatchRunner().run([spec, spec])
    process = BatchRunner(workers=2).run([spec, spec])
    thread = BatchRunner(workers=2, workers_mode="thread").run([spec, spec])
    assert serial.to_json() == process.to_json() == thread.to_json()
    reports = [
        rec.output.learning for rs in (serial, process, thread) for rec in rs
    ]
    assert all(r == reports[0] for r in reports)


@settings(max_examples=5, deadline=None)
@given(case=learn_case_strategy)
def test_learning_invariant_to_wall_clock(case):
    """Re-running the same learning spec later yields the identical run.

    Nothing in the learning path may read the wall clock: two executions
    of the same scenario at different real times must agree on every
    assignment, every arm statistic and every metric.
    """
    import time

    scenario = _learn_scenario(case)
    first = simulate_fleet(scenario, "EDF-DLT")
    time.sleep(0.01)  # a different wall-clock instant
    second = simulate_fleet(scenario, "EDF-DLT")
    assert first.assignments == second.assignments
    assert first.metrics == second.metrics
    assert first.learning == second.learning


class TestFaultAdaptation:
    """Satellite: bandits route around a flapping member; round-robin,
    being state-blind, keeps feeding it."""

    @staticmethod
    def _flapping_fleet() -> FleetScenario:
        """The documented 4-cluster fleet with member 0 flapping.

        Member 0 blacks out for [10k, 30k), [40k, 60k) and [70k, 90k) of
        the 100k horizon — down 60% of the run, so any policy that keeps
        routing there eats rejects.
        """
        from repro.faults import FaultEvent, FaultPlan

        plan = FaultPlan.from_events([
            FaultEvent(time=10_000.0, kind="blackout", duration=20_000.0, member=0),
            FaultEvent(time=40_000.0, kind="blackout", duration=20_000.0, member=0),
            FaultEvent(time=70_000.0, kind="blackout", duration=20_000.0, member=0),
        ])
        return FleetScenario.uniform(**DOCUMENTED_FLEET).with_faults(plan)

    @staticmethod
    def _pseudo_regret(out) -> float:
        """Hindsight pseudo-regret from routed/accepted counts alone.

        ``max_j(accept_rate_j) × total_routed − total_accepted`` — the
        same formula :class:`LearningReport` uses, computed externally so
        it applies to non-learning policies too.
        """
        routed = out.routed_counts
        accepted = [o.stats.accepted for o in out.outputs]
        best = max(a / r for a, r in zip(accepted, routed) if r)
        return best * sum(routed) - sum(accepted)

    @pytest.mark.parametrize("bandit", ["thompson", "ucb1"])
    def test_bandit_beats_round_robin_under_flapping(self, bandit):
        base = self._flapping_fleet()
        rr = simulate_fleet(base.with_policy("round-robin"), "EDF-DLT")
        learned = simulate_fleet(
            base.with_policy(bandit).with_learn(
                LearnConfig(mode="clusters", reward="reject-penalty")
            ),
            "EDF-DLT",
        )
        assert learned.learning is not None
        # in clusters mode with the admission-resolving reward the
        # report's regret IS the hindsight pseudo-regret
        assert learned.learning.cumulative_regret == pytest.approx(
            self._pseudo_regret(learned)
        )
        assert self._pseudo_regret(learned) < self._pseudo_regret(rr)

    def test_adaptation_is_deterministic(self):
        base = self._flapping_fleet().with_policy("thompson").with_learn(
            LearnConfig(mode="clusters", reward="reject-penalty")
        )
        first = simulate_fleet(base, "EDF-DLT")
        second = simulate_fleet(base, "EDF-DLT")
        assert first.assignments == second.assignments
        assert first.learning == second.learning
        assert first.metrics == second.metrics

    def test_fault_phase_feedback_is_ignored_by_reward_models(self):
        """PHASE_FAULT reports use negative task-id sentinels, so bandit
        per-task bookkeeping never confuses them with routed tasks."""
        policy = ThompsonSampling(
            config=LearnConfig(mode="clusters"),
            rng=np.random.default_rng(7),
            routing_rng=np.random.default_rng(8),
        )
        policy.observe(
            feedback(task_id=-1, phase="fault", accepted=False, sigma=0.0,
                     deadline=0.0)
        )
        report = policy.report()
        assert report.decisions == 0
        assert report.resolved == 0
