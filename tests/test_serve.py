"""Tests for the live admission service (:mod:`repro.serve`).

The headline assertion is the loopback guarantee: replaying a scenario's
task stream through a live server — over a real TCP socket, through the
framed wire protocol, including with *concurrent* submitters — finalizes
into an output bit-identical to the offline one-shot simulation.
"""

from __future__ import annotations

import io
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.scheduler import SchedulerStats
from repro.core.task import DivisibleTask, TaskOutcome
from repro.experiments.runner import simulate
from repro.fleet.scenario import FleetScenario
from repro.fleet.sim import simulate_fleet
from repro.learn import LearnConfig
from repro.serve import (
    AdmissionClient,
    BackgroundServer,
    ServiceProtocolError,
    available_codecs,
    loopback_diff,
    make_backend,
    replay_tasks,
)
from repro.serve.backend import ClusterBackend, FleetBackend
from repro.serve.protocol import (
    CODEC_JSON,
    CODEC_MSGPACK,
    decode_record,
    decode_stats,
    decode_task,
    encode_frame,
    encode_record,
    encode_stats,
    encode_task,
    read_frame,
)

HAS_MSGPACK = CODEC_MSGPACK in available_codecs()


def cluster_scenario(seed: int = 2007, total_time: float = 200_000.0) -> FleetScenario:
    """A 1-cluster fleet (served through the plain cluster backend)."""
    return FleetScenario.uniform(
        n_clusters=1,
        system_load=0.6,
        total_time=total_time,
        seed=seed,
        nodes=8,
        name="serve-test",
    )


def fleet_scenario(
    policy: str, seed: int = 2007, total_time: float = 100_000.0
) -> FleetScenario:
    """A small heterogeneous 3-cluster fleet under ``policy``."""
    learn = LearnConfig() if policy in ("thompson", "epsilon-greedy", "ucb1") else None
    return FleetScenario.uniform(
        n_clusters=3,
        system_load=0.6,
        total_time=total_time,
        seed=seed,
        policy=policy,
        nodes=8,
        cluster_spread=0.3,
        name="serve-test",
        learn=learn,
    )


def serve_replay(
    scenario: FleetScenario,
    algorithm: str = "EDF-DLT",
    *,
    codec: str = CODEC_JSON,
    window: int = 32,
    **backend_kwargs,
):
    """Replay the scenario's own stream through a live server.

    Returns ``(tasks, decisions, finalize_payload)``.
    """
    tasks = scenario.stream_scenario().generate_tasks()
    backend = make_backend(scenario, algorithm, **backend_kwargs)
    with BackgroundServer(backend) as bg:
        with AdmissionClient(*bg.address, codec=codec) as client:
            decisions = replay_tasks(client, tasks, window=window)
            payload = client.finalize()
    return tasks, decisions, payload


class TestProtocol:
    def test_frame_round_trip_json(self):
        message = {"op": "submit", "seq": 3, "x": [1.5, -0.25], "s": "é"}
        frame = encode_frame(message, CODEC_JSON)
        assert frame[0:1] == b"J"
        assert read_frame(io.BytesIO(frame)) == message

    @pytest.mark.skipif(not HAS_MSGPACK, reason="msgpack not installed")
    def test_frame_round_trip_msgpack(self):
        message = {"op": "submit", "seq": 3, "x": [1.5, -0.25], "s": "é"}
        frame = encode_frame(message, CODEC_MSGPACK)
        assert frame[0:1] == b"M"
        assert read_frame(io.BytesIO(frame)) == message

    @pytest.mark.skipif(HAS_MSGPACK, reason="msgpack installed")
    def test_msgpack_codec_gated_with_helpful_error(self):
        with pytest.raises(ServiceProtocolError, match="msgpack"):
            encode_frame({"op": "hello"}, CODEC_MSGPACK)

    def test_unknown_codec_refused(self):
        with pytest.raises(ServiceProtocolError, match="unknown codec"):
            encode_frame({}, "cbor")

    def test_eof_and_truncation(self):
        assert read_frame(io.BytesIO(b"")) is None
        frame = encode_frame({"op": "hello"})
        with pytest.raises(ServiceProtocolError, match="truncated"):
            read_frame(io.BytesIO(frame[:3]))
        with pytest.raises(ServiceProtocolError, match="truncated"):
            read_frame(io.BytesIO(frame[:-1]))

    def test_non_finite_floats_are_loud(self):
        with pytest.raises(ValueError):
            encode_frame({"x": float("inf")}, CODEC_JSON)

    def test_task_round_trip_is_exact(self):
        task = DivisibleTask(
            task_id=7, arrival=0.1 + 0.2, sigma=1234.5678, deadline=9999.25
        )
        again = decode_task(encode_task(task))
        assert again == task
        assert again.arrival.hex() == task.arrival.hex()

    def test_malformed_task_payload(self):
        with pytest.raises(ServiceProtocolError, match="malformed task"):
            decode_task({"task_id": 1, "arrival": 0.0})

    def test_record_and_stats_round_trip(self):
        scenario = cluster_scenario()
        output = simulate(scenario.member_scenario(0), "EDF-DLT").output
        for record in output.records.values():
            assert decode_record(encode_record(record)) == record
        stats = output.stats
        assert decode_stats(encode_stats(stats)) == stats
        assert stats != SchedulerStats()  # the round trip proved something


class TestClusterLoopback:
    @pytest.mark.parametrize("engine", ["fast", "batch", "reference"])
    def test_loopback_bit_identical(self, engine):
        scenario = cluster_scenario()
        tasks, decisions, payload = serve_replay(
            scenario, admission_engine=engine
        )
        offline = simulate(
            scenario.member_scenario(0), "EDF-DLT", admission_engine=engine
        ).output
        assert loopback_diff(payload, offline) == []
        assert len(decisions) == len(tasks)
        accepted = {
            tid
            for tid, r in offline.records.items()
            if r.outcome is TaskOutcome.ACCEPTED
        }
        for task, decision in zip(tasks, decisions):
            assert decision["accepted"] == (task.task_id in accepted)
            assert decision["member"] is None

    def test_engines_agree_over_the_wire(self):
        scenario = cluster_scenario()
        _, _, fast = serve_replay(scenario, admission_engine="fast")
        _, _, batch = serve_replay(scenario, admission_engine="batch")
        _, _, reference = serve_replay(scenario, admission_engine="reference")
        assert fast == reference
        assert batch == reference

    def test_loopback_diff_reports_tampering(self):
        scenario = cluster_scenario()
        _, _, payload = serve_replay(scenario)
        offline = simulate(scenario.member_scenario(0), "EDF-DLT").output
        payload["records"][0]["est_completion"] = 123.456
        problems = loopback_diff(payload, offline)
        assert problems and "record" in problems[0]


class TestFleetLoopback:
    @pytest.mark.parametrize(
        "policy", ["round-robin", "earliest-finish", "thompson"]
    )
    def test_loopback_bit_identical(self, policy):
        scenario = fleet_scenario(policy)
        tasks, decisions, payload = serve_replay(scenario)
        offline = simulate_fleet(scenario, "EDF-DLT")
        assert loopback_diff(payload, offline) == []
        assert [d["member"] for d in decisions] == list(offline.assignments)

    def test_learning_summary_rides_along(self):
        scenario = fleet_scenario("thompson")
        _, _, payload = serve_replay(scenario)
        offline = simulate_fleet(scenario, "EDF-DLT")
        assert offline.learning is not None
        assert payload["learning"]["best_arm"] == offline.learning.best_arm
        assert (
            payload["learning"]["cumulative_regret"]
            == offline.learning.cumulative_regret
        )

    @pytest.mark.skipif(not HAS_MSGPACK, reason="msgpack not installed")
    def test_msgpack_codec_loopback(self):
        scenario = fleet_scenario("round-robin")
        _, _, payload = serve_replay(scenario, codec=CODEC_MSGPACK)
        assert loopback_diff(payload, simulate_fleet(scenario, "EDF-DLT")) == []


def faulted_fleet_scenario(policy: str = "least-loaded") -> FleetScenario:
    """The fleet scenario with a seeded fault stream attached."""
    from repro.faults import FaultProcess

    return fleet_scenario(policy).with_faults(FaultProcess(rate=3e-4))


class TestFaultedLoopback:
    """Satellite: server replay of a *faulted* scenario stays bit-identical
    to the offline run — displacement, re-admission and the new stats
    counters all survive the wire."""

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded"])
    def test_faulted_fleet_loopback_bit_identical(self, policy):
        scenario = faulted_fleet_scenario(policy)
        tasks, decisions, payload = serve_replay(scenario)
        offline = simulate_fleet(scenario, "EDF-DLT", admission_engine="batch")
        assert loopback_diff(payload, offline) == []
        assert [d["member"] for d in decisions] == list(offline.assignments)
        # the faults actually displaced work, and the counters crossed
        # the wire intact
        assert offline.metrics.displaced > 0
        wire_displaced = sum(
            o["stats"]["displaced"] for o in payload["outputs"]
        )
        assert wire_displaced == offline.metrics.displaced

    def test_faulted_cluster_backend_loopback(self):
        from repro.faults import FaultEvent, FaultPlan

        plan = FaultPlan.from_events([
            FaultEvent(time=20_000.0, kind="blackout", duration=30_000.0),
            FaultEvent(
                time=80_000.0, kind="slowdown", duration=40_000.0,
                node=2, factor=3.0,
            ),
        ])
        scenario = cluster_scenario().with_faults(plan)
        tasks, decisions, payload = serve_replay(scenario)
        offline = simulate(
            scenario.member_scenario(0), "EDF-DLT", admission_engine="batch"
        )
        assert payload["kind"] == "cluster"
        assert loopback_diff(payload, offline.output) == []
        assert offline.output.stats.displaced > 0

    def test_fault_state_rides_snapshot(self):
        scenario = faulted_fleet_scenario()
        tasks = scenario.stream_scenario().generate_tasks()
        backend = make_backend(scenario, "EDF-DLT")
        with BackgroundServer(backend) as bg:
            with AdmissionClient(*bg.address) as client:
                replay_tasks(client, tasks, window=16)
                snapshot = client.status()
                client.finalize()
        assert "faults" in snapshot
        for key in ("displaced", "readmitted", "fault_missed", "applied"):
            assert snapshot["faults"][key] >= 0
        assert snapshot["faults"]["applied"] > 0

    def test_two_concurrent_clients_under_faults(self):
        """Two interleaved clients sharding a faulted stream finalize
        bit-identically to the offline faulted run."""
        scenario = faulted_fleet_scenario("earliest-finish")
        tasks = scenario.stream_scenario().generate_tasks()
        offline = simulate_fleet(scenario, "EDF-DLT", admission_engine="batch")
        assert offline.metrics.displaced > 0  # the faults bite this stream

        backend = make_backend(scenario, "EDF-DLT")
        with BackgroundServer(backend) as bg:
            host, port = bg.address
            with AdmissionClient(host, port) as a, AdmissionClient(
                host, port
            ) as b:
                a.open_stream()
                b.open_stream()

                def run(client, shard):
                    replay_tasks(client, shard, window=8)

                threads = [
                    threading.Thread(target=run, args=(a, tasks[0::2])),
                    threading.Thread(target=run, args=(b, tasks[1::2])),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                payload = a.finalize()

        assert loopback_diff(payload, offline) == []


class TestConcurrentClients:
    @pytest.mark.parametrize("engine", ["fast", "batch"])
    def test_two_interleaved_clients_merge_deterministically(self, engine):
        """Satellite: two clients sharding a trace ≡ one serial client,
        regardless of which admission engine serves them."""
        scenario = fleet_scenario("earliest-finish")
        tasks = scenario.stream_scenario().generate_tasks()
        offline = simulate_fleet(scenario, "EDF-DLT", admission_engine=engine)

        backend = make_backend(scenario, "EDF-DLT", admission_engine=engine)
        with BackgroundServer(backend) as bg:
            host, port = bg.address
            with AdmissionClient(host, port) as a, AdmissionClient(
                host, port
            ) as b:
                # Both clients join the merge barrier before either
                # submits, so neither shard can race ahead of the other.
                a.open_stream()
                b.open_stream()
                results: dict[str, list] = {}

                def run(name, client, shard):
                    results[name] = replay_tasks(client, shard, window=8)

                threads = [
                    threading.Thread(target=run, args=("a", a, tasks[0::2])),
                    threading.Thread(target=run, args=("b", b, tasks[1::2])),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                payload = a.finalize()

        assert loopback_diff(payload, offline) == []
        # Each shard's decisions match the offline routing assignments.
        for shard, decisions in (
            (tasks[0::2], results["a"]),
            (tasks[1::2], results["b"]),
        ):
            for task, decision in zip(shard, decisions):
                assert decision["member"] == offline.assignments[task.task_id]

    def test_finalize_refused_while_a_stream_is_open(self):
        scenario = cluster_scenario(total_time=5_000.0)
        with BackgroundServer(make_backend(scenario, "EDF-DLT")) as bg:
            with AdmissionClient(*bg.address) as client:
                client.open_stream()
                with pytest.raises(ServiceProtocolError, match="stream"):
                    client.finalize()
                client.end_stream()
                client.finalize()


class TestOperations:
    def test_probe_is_advisory_and_non_perturbing(self):
        scenario = cluster_scenario()
        tasks = scenario.stream_scenario().generate_tasks()
        backend = make_backend(scenario, "EDF-DLT")
        offline = simulate(scenario.member_scenario(0), "EDF-DLT").output
        with BackgroundServer(backend) as bg:
            with AdmissionClient(*bg.address) as client:
                client.open_stream()
                for task in tasks:
                    probe = client.probe(task).result()
                    decision = client.submit(task).result()
                    # Probe-then-submit agrees with the committed decision
                    # for a deterministic partitioner.
                    assert probe["accepted"] == decision["accepted"]
                    if decision["accepted"]:
                        assert (
                            probe["est_completion"]
                            == decision["est_completion"]
                        )
                client.end_stream()
                payload = client.finalize()
        # ... and the interleaved probes left no trace on the output
        # (stats count only real admission tests from submissions).
        assert loopback_diff(payload, offline) == []

    def test_status_and_cancel(self):
        scenario = cluster_scenario()
        tasks = scenario.stream_scenario().generate_tasks()
        backend = make_backend(scenario, "EDF-DLT")
        with BackgroundServer(backend) as bg:
            with AdmissionClient(*bg.address) as client:
                client.open_stream()
                for task in tasks[:10]:
                    client.submit(task).result()
                snap = client.status()
                assert snap["arrivals"] == 10
                status = client.status(tasks[0].task_id)
                assert status["state"] in {
                    "rejected",
                    "waiting",
                    "running",
                    "completed",
                }
                # A far-future waiting task can still be withdrawn.
                future_task = DivisibleTask(
                    task_id=10_000,
                    arrival=tasks[9].arrival,
                    sigma=50.0,
                    deadline=scenario.total_time,
                )
                decision = client.submit(future_task).result()
                if decision["accepted"]:
                    waiting = client.status(10_000)["state"] == "waiting"
                    assert client.cancel(10_000) == waiting
                assert client.cancel(123456) is False
                client.end_stream()

    def test_hello_describes_the_backend(self):
        scenario = fleet_scenario("round-robin", total_time=5_000.0)
        with BackgroundServer(make_backend(scenario, "EDF-DLT")) as bg:
            with AdmissionClient(*bg.address) as client:
                info = client.server_info
        assert info is not None
        assert info["protocol"] == 1
        assert info["codec"] == CODEC_JSON
        assert info["server"]["kind"] == "fleet"
        assert info["server"]["algorithm"] == "EDF-DLT"
        assert info["server"]["scenario"] == scenario.describe()

    def test_single_cluster_fleet_uses_cluster_backend(self):
        assert isinstance(
            make_backend(cluster_scenario(), "EDF-DLT"), ClusterBackend
        )
        assert isinstance(
            make_backend(fleet_scenario("round-robin"), "EDF-DLT"),
            FleetBackend,
        )


class TestMetricsOp:
    """The ``metrics`` wire op and its reconciliation with offline runs."""

    def test_metrics_reconcile_with_offline_summary(self):
        scenario = cluster_scenario(total_time=60_000.0)
        tasks = scenario.stream_scenario().generate_tasks()
        backend = make_backend(scenario, "EDF-DLT")
        latencies: list[float] = []
        with BackgroundServer(backend) as bg:
            with AdmissionClient(*bg.address) as client:
                replay_tasks(client, tasks, latencies=latencies)
                snap = client.metrics()
                client.finalize()
        offline = simulate(
            scenario.member_scenario(0), "EDF-DLT", admission_engine="batch"
        )
        # Every deterministic instrument of the offline run appears in the
        # live snapshot with the identical value — the snapshot riding
        # MetricsSummary and the one behind the wire op are the same
        # registry surface.
        assert offline.metrics.obs is not None
        for name, cell in offline.metrics.obs.items():
            assert snap[name] == cell, name
        # The server adds its own request accounting on top.
        assert snap['serve_requests_total{op="submit"}']["value"] == len(tasks)
        assert snap["serve_request_seconds"]["count"] >= len(tasks)
        # replay_tasks recorded one client-side latency per task.
        assert len(latencies) == len(tasks)
        assert all(dt >= 0.0 for dt in latencies)

    def test_fleet_metrics_pool_members_and_router(self):
        scenario = fleet_scenario("round-robin", total_time=30_000.0)
        tasks = scenario.stream_scenario().generate_tasks()
        with BackgroundServer(make_backend(scenario, "EDF-DLT")) as bg:
            with AdmissionClient(*bg.address) as client:
                replay_tasks(client, tasks)
                snap = client.metrics()
                client.finalize()
        assert snap["scheduler_arrivals_total"]["value"] == len(tasks)
        routed = sum(
            cell["value"]
            for name, cell in snap.items()
            if name.startswith("fleet_routed_total")
        )
        assert routed == len(tasks)

    def test_prometheus_endpoint_scrapes(self):
        import urllib.request

        scenario = cluster_scenario(total_time=20_000.0)
        tasks = scenario.stream_scenario().generate_tasks()
        backend = make_backend(scenario, "EDF-DLT")
        with BackgroundServer(backend, metrics_port=0) as bg:
            assert bg.metrics_address is not None
            host, port = bg.metrics_address
            with AdmissionClient(*bg.address) as client:
                replay_tasks(client, tasks)
                url = f"http://{host}:{port}/metrics"
                with urllib.request.urlopen(url, timeout=10) as response:
                    assert response.headers["Content-Type"].startswith(
                        "text/plain"
                    )
                    body = response.read().decode("utf-8")
                client.finalize()
        assert "# TYPE scheduler_arrivals_total counter" in body
        assert f"scheduler_arrivals_total {len(tasks)}" in body
        assert "serve_request_seconds_bucket" in body


class TestErrorPaths:
    def test_unknown_op_is_reported_not_fatal(self):
        scenario = cluster_scenario(total_time=5_000.0)
        with BackgroundServer(make_backend(scenario, "EDF-DLT")) as bg:
            with AdmissionClient(*bg.address) as client:
                with pytest.raises(ServiceProtocolError, match="unknown op"):
                    client._request({"op": "frobnicate"}).result()
                # The connection survives the error.
                assert client.status()["arrivals"] == 0

    def test_out_of_order_submission_is_an_error(self):
        scenario = cluster_scenario(total_time=5_000.0)
        with BackgroundServer(make_backend(scenario, "EDF-DLT")) as bg:
            with AdmissionClient(*bg.address) as client:
                client.open_stream()
                t1 = DivisibleTask(
                    task_id=1, arrival=100.0, sigma=10.0, deadline=1_000.0
                )
                t0 = DivisibleTask(
                    task_id=0, arrival=50.0, sigma=10.0, deadline=1_000.0
                )
                client.submit(t1).result()
                with pytest.raises(ServiceProtocolError):
                    client.submit(t0).result()
                client.end_stream()

    def test_malformed_task_reported_before_dispatch(self):
        scenario = cluster_scenario(total_time=5_000.0)
        with BackgroundServer(make_backend(scenario, "EDF-DLT")) as bg:
            with AdmissionClient(*bg.address) as client:
                # Bypass the typed API to put a bad task on the wire.
                with pytest.raises(ServiceProtocolError, match="malformed"):
                    client._request(
                        {"op": "submit", "task": {"task_id": 1}}
                    ).result()


class TestCliSmoke:
    def test_serve_replay_round_trip(self, capsys):
        """``repro serve --once`` + ``repro replay --check-offline`` ≡ CI smoke."""
        root = Path(__file__).resolve().parents[1]
        shared = [
            "--arrivals",
            "trace",
            "--trace-file",
            str(root / "examples" / "sample_arrivals.csv"),
            "--total-time",
            "200000",
        ]
        env = {**os.environ, "PYTHONPATH": str(root / "src")}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--once", *shared],
            cwd=root,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert proc.stdout is not None
            line = proc.stdout.readline()
            assert "listening on" in line, line
            address = line.strip().rsplit(" ", 1)[-1]

            from repro.cli import main

            code = main(["replay", "--server", address, "--check-offline", *shared])
        finally:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        assert code == 0
        out = capsys.readouterr().out
        assert "loopback OK" in out
        assert proc.returncode == 0
