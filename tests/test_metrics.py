"""Tests for metrics collection and replication statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.experiments.runner import simulate
from repro.metrics.stats import ConfidenceInterval, mean_ci
from repro.workload.spec import SimulationConfig


def small_config(**kw):
    base = dict(
        nodes=8,
        cms=1.0,
        cps=100.0,
        system_load=0.6,
        avg_sigma=100.0,
        dc_ratio=2.0,
        total_time=80_000.0,
        seed=77,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestMeanCi:
    def test_single_sample_degenerate(self):
        ci = mean_ci([0.4])
        assert ci.mean == 0.4
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_constant_samples_zero_width(self):
        ci = mean_ci([0.3, 0.3, 0.3])
        assert ci.half_width == pytest.approx(0.0, abs=1e-12)

    def test_t_quantile_two_samples(self):
        # n=2, df=1: t_0.975 = 12.7062; sem = std/sqrt(2).
        ci = mean_ci([0.0, 1.0])
        sem = np.std([0.0, 1.0], ddof=1) / np.sqrt(2)
        assert ci.mean == pytest.approx(0.5)
        assert ci.half_width == pytest.approx(12.7062 * sem, rel=1e-4)

    def test_bounds(self):
        ci = ConfidenceInterval(mean=0.5, half_width=0.1, confidence=0.95, n=5)
        assert ci.low == pytest.approx(0.4)
        assert ci.high == pytest.approx(0.6)

    def test_coverage_simulation(self):
        """~95% of CIs over normal samples should cover the true mean."""
        rng = np.random.default_rng(0)
        covered = 0
        trials = 400
        for _ in range(trials):
            xs = rng.normal(10.0, 2.0, size=10)
            ci = mean_ci(xs)
            if ci.low <= 10.0 <= ci.high:
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.04)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            mean_ci([])
        with pytest.raises(InvalidParameterError):
            mean_ci([1.0], confidence=1.5)


class TestSummarize:
    def test_counts_consistent(self):
        result = simulate(small_config(), "EDF-DLT")
        m = result.metrics
        assert m.arrivals == m.accepted + m.rejected
        assert m.executed == m.accepted
        assert 0.0 <= m.reject_ratio <= 1.0
        assert m.accept_ratio == pytest.approx(1.0 - m.reject_ratio)
        assert m.deadline_misses == 0

    def test_utilization_in_unit_range(self):
        m = simulate(small_config(), "EDF-DLT").metrics
        assert 0.0 <= m.utilization <= 1.0 + 1e-9
        assert m.allocated_fraction >= m.utilization - 1e-9

    def test_opr_has_iit_waste_dlt_less(self):
        """OPR holds idle nodes inside allocations; DLT works them."""
        cfg = small_config(system_load=0.9, total_time=120_000.0)
        m_opr = simulate(cfg, "EDF-OPR-MN").metrics
        m_dlt = simulate(cfg, "EDF-DLT").metrics
        # Identical arrivals; both reserve [r_i, est]; OPR idles [r_i, r_n].
        assert m_opr.iit_inside_allocations >= 0.0
        assert m_dlt.iit_inside_allocations >= 0.0
        # Per accepted task, OPR wastes at least as much reserved time.
        per_opr = m_opr.iit_inside_allocations / max(m_opr.accepted, 1)
        per_dlt = m_dlt.iit_inside_allocations / max(m_dlt.accepted, 1)
        assert per_opr >= per_dlt - 1e-6

    def test_slack_nonnegative(self):
        m = simulate(small_config(), "EDF-DLT").metrics
        assert m.mean_slack >= -1e-6
        assert m.max_slack >= m.mean_slack - 1e-9

    def test_mean_nodes_per_task_in_range(self):
        m = simulate(small_config(), "EDF-UserSplit").metrics
        if m.accepted:
            assert 1.0 <= m.mean_nodes_per_task <= 8.0
