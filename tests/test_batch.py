"""Tests for the BatchRunner/ResultSet layer and its integration points."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.errors import InvalidParameterError
from repro.experiments.batch import BatchRunner, ResultSet, RunSpec
from repro.experiments.figures import FIGURES
from repro.experiments.runner import replication_seed, run_replications
from repro.experiments.sweep import run_panel
from repro.workload.scenario import Scenario
from repro.workload.spec import SimulationConfig


def fast_scenario(**kw) -> Scenario:
    base = dict(system_load=0.6, total_time=40_000.0, seed=3, nodes=8, avg_sigma=100.0)
    base.update(kw)
    return Scenario.paper_baseline(**base)


def fast_config(**kw) -> SimulationConfig:
    base = dict(
        nodes=8,
        cms=1.0,
        cps=100.0,
        system_load=0.6,
        avg_sigma=100.0,
        dc_ratio=2.0,
        total_time=40_000.0,
        seed=3,
    )
    base.update(kw)
    return SimulationConfig(**base)


def spec_grid(n_points: int = 8, **kw) -> list[RunSpec]:
    scenario = fast_scenario(**kw)
    return [
        RunSpec(
            scenario=scenario.with_seed(replication_seed(scenario.seed, i)),
            algorithm="EDF-DLT" if i % 2 == 0 else "EDF-OPR-MN",
            labels={"point": i},
        )
        for i in range(n_points)
    ]


class TestRunSpec:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(InvalidParameterError, match="unknown algorithm"):
            RunSpec(scenario=fast_scenario(), algorithm="EDF-NOPE")

    def test_rejects_non_scenario(self):
        with pytest.raises(InvalidParameterError, match="Scenario"):
            RunSpec(scenario=fast_config(), algorithm="EDF-DLT")  # type: ignore[arg-type]


class TestBatchRunner:
    def test_serial_preserves_submission_order(self):
        results = BatchRunner().run(spec_grid(6))
        assert [r.labels["point"] for r in results] == list(range(6))

    def test_parallel_bit_identical_to_serial(self):
        """Acceptance: 4-worker batch of >= 8 points matches serial exactly."""
        specs = spec_grid(8)
        serial = BatchRunner(workers=None).run(specs)
        parallel = BatchRunner(workers=4).run(specs)
        assert len(serial) == len(parallel) == 8
        for s_rec, p_rec in zip(serial, parallel):
            assert s_rec.labels == p_rec.labels
            assert s_rec.metrics == p_rec.metrics
            assert s_rec.scenario == p_rec.scenario

    def test_workers_capped_at_spec_count(self):
        results = BatchRunner(workers=64).run(spec_grid(2))
        assert len(results) == 2

    def test_keep_output(self):
        spec = RunSpec(
            scenario=fast_scenario(), algorithm="EDF-DLT", keep_output=True
        )
        rec = BatchRunner().run([spec])[0]
        assert rec.output is not None
        assert rec.output.validation.ok
        lean = BatchRunner().run([RunSpec(scenario=fast_scenario(), algorithm="EDF-DLT")])[0]
        assert lean.output is None

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            BatchRunner(workers=-1)
        with pytest.raises(InvalidParameterError):
            BatchRunner(chunksize=0)
        with pytest.raises(InvalidParameterError):
            BatchRunner().run([object()])  # type: ignore[list-item]

    def test_adaptive_chunksize(self):
        """Default chunking scales with batch and worker counts."""
        runner = BatchRunner(workers=4)
        assert runner.effective_chunksize(1, 1) == 1
        assert runner.effective_chunksize(8, 4) == 1  # plenty of chunks
        assert runner.effective_chunksize(64, 4) == 4
        assert runner.effective_chunksize(1000, 4) == 63  # ceil(1000/16)
        assert runner.effective_chunksize(0, 4) == 1
        # an explicit chunksize always wins
        assert BatchRunner(workers=4, chunksize=7).effective_chunksize(1000, 4) == 7

    def test_adaptive_chunksize_bit_identical_to_serial(self):
        """A chunked parallel batch still equals the serial records."""
        specs = spec_grid(9)
        serial = BatchRunner(workers=None).run(specs)
        chunked = BatchRunner(workers=2, workers_mode="thread").run(specs)
        assert BatchRunner(workers=2).effective_chunksize(9, 2) > 1
        for s_rec, c_rec in zip(serial, chunked):
            assert s_rec.metrics == c_rec.metrics
            assert s_rec.labels == c_rec.labels

    def test_thread_mode_bit_identical_to_serial(self):
        """workers_mode="thread" (fork-free environments) == serial."""
        specs = spec_grid(8)
        serial = BatchRunner(workers=None).run(specs)
        threaded = BatchRunner(workers=4, workers_mode="thread").run(specs)
        assert len(serial) == len(threaded) == 8
        for s_rec, t_rec in zip(serial, threaded):
            assert s_rec.metrics == t_rec.metrics
            assert s_rec.labels == t_rec.labels
            assert s_rec.algorithm == t_rec.algorithm

    def test_workers_mode_validated(self):
        with pytest.raises(InvalidParameterError, match="workers_mode"):
            BatchRunner(workers_mode="greenlet")

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs for a speedup"
    )
    def test_parallel_measurably_faster(self):
        """Acceptance: the 4-worker path beats serial wall-clock."""
        specs = spec_grid(8, total_time=150_000.0)
        t0 = time.perf_counter()
        serial = BatchRunner().run(specs)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = BatchRunner(workers=4).run(specs)
        t_parallel = time.perf_counter() - t0
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert t_parallel < t_serial * 0.9, (t_serial, t_parallel)


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self) -> ResultSet:
        return BatchRunner().run(spec_grid(6))

    def test_filter_by_algorithm_and_label(self, results):
        edf = results.filter(algorithm="EDF-DLT")
        assert len(edf) == 3
        assert all(r.algorithm == "EDF-DLT" for r in edf)
        assert len(results.filter(point=2)) == 1
        assert len(results.filter(lambda r: r.labels["point"] >= 4)) == 2

    def test_group_by(self, results):
        groups = results.group_by("algorithm")
        assert set(groups) == {"EDF-DLT", "EDF-OPR-MN"}
        assert sum(len(g) for g in groups.values()) == len(results)
        with pytest.raises(InvalidParameterError):
            results.group_by("no_such_label")

    def test_values_and_aggregate_validate_metric(self, results):
        values = results.values("reject_ratio")
        assert len(values) == len(results)
        assert all(0.0 <= v <= 1.0 for v in values)
        ci = results.aggregate("utilization")
        assert ci.n == len(results)
        with pytest.raises(InvalidParameterError, match="valid metrics"):
            results.values("not_a_metric")

    def test_json_round_trip(self, results):
        rows = json.loads(results.to_json())
        assert len(rows) == len(results)
        for row, rec in zip(rows, results):
            assert row["algorithm"] == rec.algorithm
            assert row["reject_ratio"] == rec.metrics.reject_ratio
            assert row["scenario_seed"] == rec.scenario.seed

    def test_csv_shape(self, results):
        lines = results.to_csv().splitlines()
        header = lines[0].split(",")
        assert len(lines) == len(results) + 1
        assert "algorithm" in header
        assert "reject_ratio" in header
        assert "scenario_nodes" in header


class TestRunReplications:
    def test_metric_validated_up_front(self):
        # A typo fails fast — even with an enormous horizon nothing runs.
        cfg = fast_config(total_time=10_000_000_000.0)
        with pytest.raises(InvalidParameterError, match="valid metrics"):
            run_replications(cfg, "EDF-DLT", 3, metric="reject_ratioo")

    def test_accepts_scenario_input(self):
        scenario = fast_scenario()
        agg = run_replications(scenario, "EDF-DLT", 3)
        assert agg.config is scenario
        assert len(agg.samples) == 3

    def test_parallel_matches_serial(self):
        cfg = fast_config()
        serial = run_replications(cfg, "EDF-DLT", 4)
        parallel = run_replications(cfg, "EDF-DLT", 4, workers=4)
        assert serial.samples == parallel.samples
        assert serial.ci == parallel.ci

    def test_scenario_and_config_inputs_agree(self):
        cfg = fast_config()
        a = run_replications(cfg, "EDF-DLT", 3)
        b = run_replications(cfg.to_scenario(), "EDF-DLT", 3)
        assert a.samples == b.samples

    def test_keep_runs_retains_outputs(self):
        cfg = fast_config()
        agg = run_replications(cfg, "EDF-DLT", 2, keep_runs=True)
        assert len(agg.runs) == 2
        seeds = {r.config.seed for r in agg.runs}
        assert seeds == {replication_seed(cfg.seed, 0), replication_seed(cfg.seed, 1)}
        for run in agg.runs:
            assert run.output.validation.ok

    def test_explicit_sim_flags(self):
        cfg = fast_config()
        eager = run_replications(cfg, "EDF-DLT", 2, eager_release=True)
        assert len(eager.samples) == 2
        with pytest.raises(TypeError):
            run_replications(cfg, "EDF-DLT", 2, bogus_flag=True)


class TestRunPanelWorkers:
    def test_parallel_sweep_matches_serial(self):
        """Acceptance: parallel sweep of >= 8 points == serial sweep."""
        kwargs = dict(
            loads=[0.2, 0.4, 0.6, 0.8],  # x 2 algorithms x 2 reps = 16 runs
            replications=2,
            total_time=30_000.0,
        )
        serial = run_panel(FIGURES["fig3a"], **kwargs)
        parallel = run_panel(FIGURES["fig3a"], **kwargs, workers=4)
        assert serial.loads == parallel.loads
        for algorithm in serial.series:
            assert serial.series[algorithm] == parallel.series[algorithm]

    def test_metric_validated_up_front(self):
        with pytest.raises(InvalidParameterError, match="valid metrics"):
            run_panel(FIGURES["fig3a"], loads=[0.5], metric="nope")

    def test_duplicate_loads_stay_independent_points(self):
        """A repeated load in the grid gets its own seed and its own point."""
        panel = run_panel(
            FIGURES["fig3a"],
            loads=[0.5, 0.5],
            replications=2,
            total_time=20_000.0,
        )
        for algorithm in panel.series:
            first, second = panel.series[algorithm]
            assert len(first.samples) == len(second.samples) == 2
            # Distinct seeds per grid entry → distinct samples (not merged).
            assert first.samples != second.samples
