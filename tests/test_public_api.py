"""Contract tests for the package's public surface.

A downstream user should be able to rely on ``repro``'s top-level names
and the README quickstart verbatim.
"""

from __future__ import annotations

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_matches_metadata(self):
        from repro._version import __version__

        assert repro.__version__ == __version__
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_algorithm_registry_exposed(self):
        assert "EDF-DLT" in repro.ALGORITHMS


class TestReadmeQuickstart:
    def test_quickstart_verbatim(self):
        """The exact code block from README.md must work."""
        from repro import Scenario, simulate

        scenario = Scenario.paper_baseline(
            system_load=0.6,
            total_time=50_000.0,
            seed=42,
        )
        result = simulate(scenario, "EDF-DLT")
        assert 0.0 <= result.metrics.reject_ratio <= 1.0
        assert "invariants" in result.output.validation.summary()

    def test_legacy_quickstart_verbatim(self):
        """The README's collapsed legacy block must keep working."""
        from repro import SimulationConfig, simulate

        config = SimulationConfig(
            nodes=16,
            cms=1.0,
            cps=100.0,
            system_load=0.6,
            avg_sigma=200.0,
            dc_ratio=2.0,
            total_time=50_000.0,
            seed=42,
        )
        result = simulate(config, "EDF-DLT")
        assert 0.0 <= result.metrics.reject_ratio <= 1.0

    def test_readme_fleet_block(self):
        """The README fleet snippet works (trimmed horizon for speed)."""
        from repro import FleetScenario, simulate_fleet

        fleet = FleetScenario.uniform(
            n_clusters=4,
            nodes=8,
            cluster_spread=0.8,
            system_load=0.6,
            total_time=20_000.0,  # trimmed for test speed
            seed=2007,
            policy="earliest-finish",
        )
        out = simulate_fleet(fleet, "EDF-DLT")
        assert 0.0 <= out.reject_ratio <= 1.0
        assert sum(out.routed_counts) == out.metrics.arrivals

    def test_module_doctest_example(self):
        """The package docstring's example holds."""
        from repro import SimulationConfig, simulate

        cfg = SimulationConfig(
            nodes=16,
            cms=1.0,
            cps=100.0,
            system_load=0.5,
            avg_sigma=200.0,
            dc_ratio=2.0,
            total_time=100_000.0,
            seed=7,
        )
        result = simulate(cfg, "EDF-DLT")
        assert 0.0 <= result.metrics.reject_ratio <= 1.0


class TestErrorHierarchy:
    def test_single_catchall(self):
        from repro.core import errors

        for cls in (
            errors.InvalidParameterError,
            errors.InvalidTaskError,
            errors.InfeasibleTaskError,
            errors.ScheduleConsistencyError,
            errors.SimulationError,
            errors.TheoremViolationError,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_value_error_compat(self):
        """Parameter errors double as ValueError for ergonomic catching."""
        from repro.core.errors import InvalidParameterError

        with pytest.raises(ValueError):
            raise InvalidParameterError("x")
