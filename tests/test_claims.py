"""The claim audit: every falsifiable statement of Sections 5-6, checked.

Reduced scale keeps the suite fast; `scripts/run_experiments.py` plus the
benches re-audit at larger scales.
"""

from __future__ import annotations

import pytest

from repro.experiments.claims import CLAIMS, check_claim

FAST = dict(total_time=150_000.0, replications=2, loads=(0.4, 0.8))


@pytest.mark.parametrize("claim_id", sorted(CLAIMS))
def test_claim(claim_id):
    result = check_claim(claim_id, **FAST)
    assert result.holds, f"{claim_id} failed: {result.detail}"


def test_unknown_claim():
    with pytest.raises(KeyError, match="unknown claim"):
        check_claim("C99")
