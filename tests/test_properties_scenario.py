"""Property-based determinism tests for the Scenario API.

Uses hypothesis when available (it is in the dev environment); the
properties assert the redesign's core contract: identical ``Scenario`` +
seed ⇒ identical task sets and metrics, with the legacy flat-config path
and the parallel batch path both bit-identical to the serial scenario
path.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.experiments.batch import BatchRunner, RunSpec  # noqa: E402
from repro.experiments.runner import simulate  # noqa: E402
from repro.workload.generator import generate_tasks  # noqa: E402
from repro.workload.scenario import Scenario  # noqa: E402
from repro.workload.spec import SimulationConfig  # noqa: E402

#: Small, fast parameter space — generation properties need breadth, not scale.
config_strategy = st.builds(
    SimulationConfig,
    nodes=st.integers(min_value=2, max_value=16),
    cms=st.sampled_from([1.0, 2.0, 4.0]),
    cps=st.sampled_from([10.0, 100.0, 1000.0]),
    system_load=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    avg_sigma=st.floats(min_value=20.0, max_value=400.0, allow_nan=False),
    dc_ratio=st.floats(min_value=1.5, max_value=20.0, allow_nan=False),
    total_time=st.floats(min_value=2_000.0, max_value=20_000.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


@settings(max_examples=25, deadline=None)
@given(config=config_strategy)
def test_scenario_generation_deterministic(config):
    """Same Scenario + seed ⇒ the identical task set, every time."""
    scenario = Scenario.from_config(config)
    first = scenario.generate_tasks()
    second = scenario.generate_tasks()
    assert first == second


@settings(max_examples=25, deadline=None)
@given(config=config_strategy)
def test_scenario_matches_legacy_generator(config):
    """The composable path reproduces the flat-config path bit for bit."""
    assert Scenario.from_config(config).generate_tasks() == generate_tasks(config)


@settings(max_examples=10, deadline=None)
@given(
    config=config_strategy,
    algorithm=st.sampled_from(["EDF-DLT", "EDF-OPR-MN", "FIFO-DLT"]),
)
def test_simulation_metrics_deterministic(config, algorithm):
    """End-to-end: identical scenario + seed ⇒ identical metrics."""
    scenario = Scenario.from_config(config)
    assert simulate(scenario, algorithm).metrics == simulate(config, algorithm).metrics


@settings(max_examples=5, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1),
        min_size=2,
        max_size=4,
        unique=True,
    )
)
def test_parallel_batch_bit_identical_to_serial(seeds):
    """BatchRunner results never depend on the worker count."""
    base = Scenario.paper_baseline(
        system_load=0.7, total_time=10_000.0, seed=0, nodes=4, avg_sigma=50.0
    )
    specs = [
        RunSpec(scenario=base.with_seed(s), algorithm="EDF-DLT", labels={"seed": s})
        for s in seeds
    ]
    serial = BatchRunner().run(specs)
    parallel = BatchRunner(workers=2).run(specs)
    assert [r.metrics for r in serial] == [r.metrics for r in parallel]
    assert [r.labels for r in serial] == [r.labels for r in parallel]
