"""Smoke tests: every example script runs to completion.

The examples double as integration tests of the public API; each must
exit 0 and print its headline output.  Horizons inside the scripts are
modest, but to keep the test suite fast we run them in-process with a
trimmed horizon where the script exposes one.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_examples_directory_complete():
    """The README promises at least these scripts."""
    for required in (
        "quickstart.py",
        "cms_physics_pipeline.py",
        "capacity_planning.py",
        "theorem4_validation.py",
        "multiround_future_work.py",
        "fleet_routing.py",
        "adaptive_routing.py",
    ):
        assert required in ALL_EXAMPLES


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "theorem4_validation.py", "fleet_routing.py"],
)
def test_example_runs(script, capsys):
    """The fastest examples run end to end inside the suite."""
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_quickstart_output_mentions_theorem(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Theorem 4" in out
    assert "EDF-DLT" in out and "EDF-OPR-MN" in out
