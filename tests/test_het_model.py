"""Tests for the heterogeneous model (Section 4.1.1) — the paper's core.

Covers Eq. 1-7 and Eq. 14 plus the paper's formal results:
Assertion 1 (α_i < α_1), Lemma 2 (α_i < (Cps_1/Cps_i) α_1),
Assertion 3, Eq. 9 (Ê <= E) and Theorem 4 (actual <= estimate).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dlt, het_model
from repro.core.errors import InvalidParameterError

# Release-time vectors: sorted, non-negative, spread up to ~10x typical E.
release_vectors = st.lists(
    st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False),
    min_size=1,
    max_size=32,
).map(sorted)

cost_pairs = st.tuples(
    st.floats(min_value=0.1, max_value=50.0),  # cms
    st.floats(min_value=1.0, max_value=10_000.0),  # cps
)

sigmas = st.floats(min_value=0.5, max_value=5_000.0)


def build(sigma, releases, cms, cps):
    return het_model.build_model(sigma, releases, cms, cps)


class TestModelConstruction:
    def test_simultaneous_release_reduces_to_opr(self):
        """With all r_i equal the heterogeneous model IS the OPR model."""
        sigma, cms, cps = 200.0, 1.0, 100.0
        m = build(sigma, [5.0] * 8, cms, cps)
        assert np.allclose(m.alphas, dlt.opr_alphas(8, cms, cps), rtol=1e-9)
        assert m.exec_time == pytest.approx(
            dlt.execution_time(sigma, 8, cms, cps), rel=1e-9
        )
        assert m.completion == pytest.approx(5.0 + m.exec_time)

    def test_single_node(self):
        m = build(100.0, [3.0], 1.0, 10.0)
        assert m.alphas == (1.0,)
        assert m.exec_time == pytest.approx(100.0 * 11.0)
        assert m.completion == pytest.approx(3.0 + 1100.0)

    def test_eq1_effective_costs(self):
        """Cps_i = E/(E + r_n - r_i) * Cps, ending exactly at Cps."""
        sigma, cms, cps = 200.0, 1.0, 100.0
        releases = [0.0, 100.0, 400.0]
        m = build(sigma, releases, cms, cps)
        e = dlt.execution_time(sigma, 3, cms, cps)
        for r_i, cps_i in zip(releases, m.cps_eff):
            assert cps_i == pytest.approx(e / (e + 400.0 - r_i) * cps, rel=1e-12)
        assert m.cps_eff[-1] == pytest.approx(cps)

    def test_earlier_nodes_are_faster_in_model(self):
        m = build(200.0, [0.0, 50.0, 200.0, 200.0], 1.0, 100.0)
        assert list(m.cps_eff) == sorted(m.cps_eff)  # non-decreasing costs

    def test_unsorted_releases_rejected(self):
        with pytest.raises(InvalidParameterError):
            build(100.0, [5.0, 1.0], 1.0, 10.0)

    def test_empty_releases_rejected(self):
        with pytest.raises(InvalidParameterError):
            build(100.0, [], 1.0, 10.0)

    def test_nonfinite_release_rejected(self):
        with pytest.raises(InvalidParameterError):
            build(100.0, [0.0, np.inf], 1.0, 10.0)


class TestPartitionProperties:
    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=200, deadline=None)
    def test_alphas_sum_to_one_and_positive(self, sigma, releases, costs):
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        a = np.asarray(m.alphas)
        assert np.all(a > 0)
        assert a.sum() == pytest.approx(1.0, rel=1e-9)

    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=200, deadline=None)
    def test_assertion1_alpha_i_below_alpha_1(self, sigma, releases, costs):
        """Assertion 1: α_i < α_1 for i >= 2."""
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        a = m.alphas
        assert all(a[i] < a[0] * (1 + 1e-12) for i in range(1, len(a)))

    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=200, deadline=None)
    def test_lemma2_alpha_bound(self, sigma, releases, costs):
        """Lemma 2: α_i < (Cps_1 / Cps_i) α_1 for i >= 2."""
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        for i in range(1, m.n):
            bound = m.cps_eff[0] / m.cps_eff[i] * m.alphas[0]
            assert m.alphas[i] < bound * (1 + 1e-9)

    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=200, deadline=None)
    def test_eq9_exec_time_bounded_by_no_iit(self, sigma, releases, costs):
        """Eq. 9: Ê(σ, n) <= E(σ, n)."""
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        assert m.exec_time <= m.no_iit_exec_time * (1 + 1e-9)

    def test_stagger_strictly_helps(self):
        """Any strictly earlier node makes Ê strictly smaller than E."""
        m = build(200.0, [0.0, 500.0, 500.0], 1.0, 100.0)
        assert m.exec_time < m.no_iit_exec_time * (1 - 1e-9)

    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=150, deadline=None)
    def test_equal_finish_in_het_model(self, sigma, releases, costs):
        """DLT optimality: in the het model all nodes finish at r_n + Ê.

        Node i finishes at Σ_{j<=i} α_j σ Cms + α_i σ Cps_i after r_n.
        """
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        a = np.asarray(m.alphas)
        cum_trans = np.cumsum(a) * sigma * cms
        finish = cum_trans + a * sigma * np.asarray(m.cps_eff)
        assert np.allclose(finish, m.exec_time, rtol=1e-6)


class TestNtildeMin:
    def test_matches_min_nodes_formula(self):
        got = het_model.ntilde_min(200.0, 1.0, 100.0, 0.0, 3000.0, 500.0)
        want = dlt.min_nodes(200.0, 1.0, 100.0, 3000.0 - 500.0)
        assert got == want

    def test_rejects_when_budget_gone(self):
        assert het_model.ntilde_min(200.0, 1.0, 100.0, 0.0, 100.0, 200.0) is None

    def test_rejects_when_gamma_nonpositive(self):
        # budget 150 < sigma*cms = 200 → not even transmission fits.
        assert het_model.ntilde_min(200.0, 1.0, 100.0, 0.0, 150.0, 0.0) is None

    @given(
        sigma=st.floats(min_value=1.0, max_value=2_000.0),
        releases=release_vectors,
        costs=cost_pairs,
        slack=st.floats(min_value=1.05, max_value=30.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_allocating_ntilde_guarantees_deadline(
        self, sigma, releases, costs, slack
    ):
        """The paper's guarantee: ñ_min nodes at r_n meet the deadline."""
        cms, cps = costs
        rn = releases[-1]
        deadline = rn + sigma * cms * slack  # absolute, above feasibility floor
        n = het_model.ntilde_min(sigma, cms, cps, 0.0, deadline, rn)
        if n is None:
            return  # infeasible from rn; nothing to guarantee
        # Start the task on n nodes all available exactly at r_n (worst
        # case consistent with the bound) — completion must meet deadline.
        m = build(sigma, [rn] * n, cms, cps)
        assert m.completion <= deadline * (1 + 1e-9)


class TestActualSchedule:
    def test_recursion_respects_releases_and_sequencing(self):
        sigma, cms, cps = 100.0, 1.0, 10.0
        m = build(sigma, [0.0, 30.0, 60.0], cms, cps)
        sched = het_model.actual_node_schedule(
            sigma, m.alphas, m.release_times, cms, cps
        )
        # First chunk starts at r_1.
        assert sched.trans_start[0] == pytest.approx(0.0)
        # Chunks are sequential and never precede the node's release.
        for i in range(1, 3):
            assert sched.trans_start[i] >= sched.trans_end[i - 1] - 1e-12
            assert sched.trans_start[i] >= m.release_times[i] - 1e-12

    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=200, deadline=None)
    def test_theorem4_actual_no_later_than_estimate(self, sigma, releases, costs):
        """Theorem 4, the paper's soundness result, on random instances."""
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        sched = het_model.actual_node_schedule(
            sigma, m.alphas, m.release_times, cms, cps
        )
        assert sched.completion <= m.completion * (1 + 1e-9)

    @given(sigma=sigmas, releases=release_vectors, costs=cost_pairs)
    @settings(max_examples=100, deadline=None)
    def test_theorem4_per_node_bound(self, sigma, releases, costs):
        """The proof's stronger per-node form: every t_act_i <= t_est."""
        cms, cps = costs
        m = build(sigma, releases, cms, cps)
        sched = het_model.actual_node_schedule(
            sigma, m.alphas, m.release_times, cms, cps
        )
        assert np.all(sched.comp_end <= m.completion * (1 + 1e-9))

    def test_not_before_floor(self):
        sigma, cms, cps = 10.0, 1.0, 10.0
        m = build(sigma, [0.0, 0.0], cms, cps)
        sched = het_model.actual_node_schedule(
            sigma, m.alphas, m.release_times, cms, cps, not_before=5.0
        )
        assert sched.trans_start[0] == pytest.approx(5.0)

    def test_bad_alphas_rejected(self):
        with pytest.raises(InvalidParameterError):
            het_model.actual_node_schedule(10.0, [0.6, 0.6], [0.0, 0.0], 1.0, 10.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            het_model.actual_node_schedule(10.0, [1.0], [0.0, 1.0], 1.0, 10.0)
