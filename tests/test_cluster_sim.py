"""Integration tests: the full DES executing workloads end to end."""

from __future__ import annotations

import pytest

from repro.core.algorithms import make_algorithm
from repro.core.cluster import ClusterSpec
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask, TaskOutcome
from repro.sim.cluster_sim import ClusterSimulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import SimulationConfig


def task(tid, arrival=0.0, sigma=100.0, deadline=20_000.0):
    return DivisibleTask(task_id=tid, arrival=arrival, sigma=sigma, deadline=deadline)


CLUSTER = ClusterSpec(nodes=4, cms=1.0, cps=100.0)


def run_tasks(tasks, algorithm="EDF-DLT", cluster=CLUSTER, **kw):
    sim = ClusterSimulation(
        cluster, make_algorithm(algorithm), tasks, horizon=100_000.0, **kw
    )
    return sim.run()


class TestBasicExecution:
    def test_single_task_executes_exactly(self):
        """One task on an idle cluster: actual == estimate (OPR path)."""
        out = run_tasks([task(0, sigma=100.0)], algorithm="EDF-OPR-MN")
        rec = out.records[0]
        assert rec.outcome is TaskOutcome.ACCEPTED
        assert rec.actual_completion == pytest.approx(rec.est_completion, rel=1e-9)
        assert out.validation.ok

    def test_dlt_single_task_idle_equals_opr(self):
        out_d = run_tasks([task(0)], algorithm="EDF-DLT")
        out_o = run_tasks([task(0)], algorithm="EDF-OPR-MN")
        assert out_d.records[0].actual_completion == pytest.approx(
            out_o.records[0].actual_completion, rel=1e-9
        )

    def test_rejected_task_never_executes(self):
        out = run_tasks([task(0, deadline=50.0)])
        assert out.records[0].outcome is TaskOutcome.REJECTED
        assert out.records[0].actual_completion is None
        assert out.executed_tasks == 0

    def test_busy_time_equals_total_work(self):
        """Busy node-seconds of one task == sigma*(Cms+Cps), any method."""
        for alg in ("EDF-DLT", "EDF-OPR-MN", "EDF-UserSplit"):
            out = run_tasks([task(0, sigma=100.0)], algorithm=alg)
            assert out.node_busy_time.sum() == pytest.approx(
                100.0 * 101.0, rel=1e-9
            ), alg

    def test_allocation_at_least_busy(self):
        out = run_tasks(
            [task(i, arrival=i * 10.0, sigma=150.0) for i in range(6)],
            algorithm="EDF-OPR-MN",
        )
        assert out.node_allocated_time.sum() >= out.node_busy_time.sum() - 1e-6

    def test_task_order_enforced(self):
        with pytest.raises(InvalidParameterError):
            run_tasks([task(0, arrival=5.0), task(1, arrival=1.0)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_tasks([task(0), task(0, arrival=1.0)])

    def test_run_once_only(self):
        sim = ClusterSimulation(
            CLUSTER, make_algorithm("EDF-DLT"), [task(0)], horizon=1000.0
        )
        sim.run()
        with pytest.raises(InvalidParameterError):
            sim.run()


class TestTraces:
    def test_trace_records_chunks(self):
        out = run_tasks([task(0)], trace=True)
        assert len(out.traces) == 1
        tr = out.traces[0]
        assert tr.task_id == 0
        assert len(tr.chunks) == out.records[0].n_nodes
        assert tr.completion == pytest.approx(out.records[0].actual_completion)

    def test_chunk_alphas_sum_to_one(self):
        out = run_tasks([task(0)], trace=True)
        assert sum(c.alpha for c in out.traces[0].chunks) == pytest.approx(1.0)

    def test_no_node_overlap_across_tasks(self):
        tasks = [task(i, arrival=i * 50.0, sigma=120.0) for i in range(10)]
        out = run_tasks(tasks, trace=True)
        assert out.validation.ok  # includes the overlap check

    def test_sequential_transmission_within_task(self):
        out = run_tasks([task(0)], trace=True)
        chunks = sorted(out.traces[0].chunks, key=lambda c: c.position)
        for a, b in zip(chunks, chunks[1:]):
            assert b.trans_start >= a.trans_end - 1e-9


class TestInvariantsAtScale:
    @pytest.mark.parametrize(
        "algorithm",
        [
            "EDF-DLT",
            "FIFO-DLT",
            "EDF-OPR-MN",
            "FIFO-OPR-MN",
            "EDF-UserSplit",
            "FIFO-UserSplit",
            "EDF-OPR-AN",
            "EDF-DLT-AN",
        ],
    )
    def test_theorem4_and_deadlines_hold(self, algorithm):
        """Hundreds of random tasks: every executed task obeys Theorem 4
        and meets its deadline (strict validator raises otherwise)."""
        cfg = SimulationConfig(
            nodes=16,
            cms=1.0,
            cps=100.0,
            system_load=0.8,
            avg_sigma=200.0,
            dc_ratio=2.0,
            total_time=250_000.0,
            seed=99,
        )
        gen = WorkloadGenerator(cfg)
        tasks = gen.generate()
        sim = ClusterSimulation(
            cfg.cluster,
            make_algorithm(algorithm, rng=gen.algorithm_rng()),
            tasks,
            horizon=cfg.total_time,
            validate=True,
            trace=True,
        )
        out = sim.run()
        assert out.validation.ok, out.validation.summary()
        assert out.executed_tasks == out.stats.accepted
        # Every accepted task has a record with actuals filled in.
        for rec in out.records.values():
            if rec.outcome is TaskOutcome.ACCEPTED:
                assert rec.actual_completion is not None
                assert rec.deadline_met is True

    def test_determinism_across_runs(self):
        cfg = SimulationConfig(
            nodes=8,
            cms=1.0,
            cps=100.0,
            system_load=0.7,
            avg_sigma=100.0,
            dc_ratio=2.0,
            total_time=100_000.0,
            seed=5,
        )

        def one():
            gen = WorkloadGenerator(cfg)
            sim = ClusterSimulation(
                cfg.cluster,
                make_algorithm("EDF-UserSplit", rng=gen.algorithm_rng()),
                gen.generate(),
                horizon=cfg.total_time,
            )
            out = sim.run()
            return (
                out.stats.rejected,
                tuple(
                    (tid, r.actual_completion)
                    for tid, r in sorted(out.records.items())
                ),
            )

        assert one() == one()


class TestEagerReleaseAblation:
    def test_eager_never_worse(self):
        """Earlier node hand-back can only help acceptance."""
        cfg = SimulationConfig(
            nodes=16,
            cms=1.0,
            cps=100.0,
            system_load=0.9,
            avg_sigma=200.0,
            dc_ratio=2.0,
            total_time=150_000.0,
            seed=21,
        )
        gen = WorkloadGenerator(cfg)
        tasks = gen.generate()

        def run(eager):
            sim = ClusterSimulation(
                cfg.cluster,
                make_algorithm("EDF-DLT"),
                tasks,
                horizon=cfg.total_time,
                eager_release=eager,
            )
            return sim.run().stats.reject_ratio

        # Not a theorem (admission is greedy), but with one seed and a
        # large margin it is a solid regression check.
        assert run(True) <= run(False) + 0.05


class TestSharedHeadLinkAblation:
    def test_contention_can_delay_but_never_crashes(self):
        cfg = SimulationConfig(
            nodes=16,
            cms=4.0,
            cps=100.0,
            system_load=0.9,
            avg_sigma=200.0,
            dc_ratio=2.0,
            total_time=100_000.0,
            seed=31,
        )
        gen = WorkloadGenerator(cfg)
        tasks = gen.generate()
        sim = ClusterSimulation(
            cfg.cluster,
            make_algorithm("EDF-DLT"),
            tasks,
            horizon=cfg.total_time,
            shared_head_link=True,
        )
        out = sim.run()  # non-strict: violations recorded, not raised
        # The report exists and counts are consistent.
        assert out.validation.checked_tasks == out.stats.accepted
