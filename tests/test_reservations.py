"""Tests for the Release(node_k) reservation model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError, ScheduleConsistencyError
from repro.core.reservations import NodeReservations


class TestConstruction:
    def test_starts_all_free_at_zero(self):
        r = NodeReservations(4)
        assert list(r.release_times) == [0.0] * 4

    def test_from_times(self):
        r = NodeReservations.from_times([1.0, 3.0, 2.0])
        assert list(r.release_times) == [1.0, 3.0, 2.0]

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            NodeReservations(0)
        with pytest.raises(InvalidParameterError):
            NodeReservations.from_times([])

    def test_copy_is_independent(self):
        r = NodeReservations(2)
        c = r.copy()
        c.assign([0], 10.0)
        assert r.release_times[0] == 0.0
        assert c.release_times[0] == 10.0


class TestQueries:
    def test_availability_floors_at_now(self):
        r = NodeReservations.from_times([1.0, 5.0])
        assert list(r.availability(3.0)) == [3.0, 5.0]

    def test_available_count(self):
        r = NodeReservations.from_times([1.0, 5.0, 2.0])
        assert r.available_count(0.5) == 0
        assert r.available_count(1.0) == 1
        assert r.available_count(2.0) == 2
        assert r.available_count(10.0) == 3

    def test_earliest_time_for(self):
        r = NodeReservations.from_times([1.0, 5.0, 2.0])
        assert r.earliest_time_for(1, now=0.0) == pytest.approx(1.0)
        assert r.earliest_time_for(2, now=0.0) == pytest.approx(2.0)
        assert r.earliest_time_for(3, now=0.0) == pytest.approx(5.0)
        # `now` floors availability.
        assert r.earliest_time_for(1, now=1.5) == pytest.approx(1.5)

    def test_earliest_time_bounds_checked(self):
        r = NodeReservations(2)
        with pytest.raises(InvalidParameterError):
            r.earliest_time_for(0, now=0.0)
        with pytest.raises(InvalidParameterError):
            r.earliest_time_for(3, now=0.0)

    def test_release_times_read_only(self):
        r = NodeReservations(2)
        with pytest.raises(ValueError):
            r.release_times[0] = 9.0  # type: ignore[index]


class TestMutation:
    def test_assign_extends_hold(self):
        r = NodeReservations(3)
        r.assign([0, 2], 7.0)
        assert list(r.release_times) == [7.0, 0.0, 7.0]

    def test_assign_cannot_shrink(self):
        r = NodeReservations.from_times([10.0, 0.0])
        with pytest.raises(ScheduleConsistencyError):
            r.assign([0], 5.0)

    def test_assign_validates_ids(self):
        r = NodeReservations(2)
        with pytest.raises(InvalidParameterError):
            r.assign([2], 1.0)
        with pytest.raises(InvalidParameterError):
            r.assign([-1], 1.0)
        with pytest.raises(InvalidParameterError):
            r.assign([], 1.0)

    def test_release_early_shrinks_only(self):
        r = NodeReservations.from_times([10.0, 20.0])
        r.release_early([0, 1], [12.0, 15.0])  # 12 > 10 must NOT extend
        assert list(r.release_times) == [10.0, 15.0]

    def test_release_early_validates(self):
        r = NodeReservations(2)
        with pytest.raises(InvalidParameterError):
            r.release_early([0], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            r.release_early([5], [1.0])


class TestPropertyBased:
    @given(
        times=st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=1, max_size=32
        ),
        now=st.floats(min_value=0, max_value=1e6),
    )
    def test_availability_at_least_now_and_release(self, times, now):
        r = NodeReservations.from_times(times)
        avail = r.availability(now)
        assert np.all(avail >= now)
        assert np.all(avail >= np.asarray(times) - 1e-12)

    @given(
        times=st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=2, max_size=16
        )
    )
    def test_earliest_time_monotone_in_n(self, times):
        r = NodeReservations.from_times(times)
        vals = [r.earliest_time_for(n, now=0.0) for n in range(1, len(times) + 1)]
        assert vals == sorted(vals)
