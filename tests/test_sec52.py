"""Tests for the Section 5.2 aggregate study driver."""

from __future__ import annotations

import pytest

from repro.experiments.sec52 import (
    WinStats,
    default_grid,
    render_win_stats,
    run_win_stats,
)


class TestWinStats:
    def test_fraction(self):
        s = WinStats(
            comparisons=10,
            dlt_wins=8,
            user_split_wins=1,
            ties=1,
            dlt_gains=(0.1, 0.2),
            user_split_gains=(0.01,),
        )
        assert s.user_split_win_fraction == pytest.approx(0.1)
        assert s.dlt_gain_avg_max_min == pytest.approx((0.15, 0.2, 0.1))
        assert s.user_split_gain_avg_max_min == pytest.approx((0.01, 0.01, 0.01))

    def test_empty_gains(self):
        s = WinStats(
            comparisons=0,
            dlt_wins=0,
            user_split_wins=0,
            ties=0,
            dlt_gains=(),
            user_split_gains=(),
        )
        assert s.user_split_win_fraction == 0.0
        assert s.dlt_gain_avg_max_min == (0.0, 0.0, 0.0)


class TestGrid:
    def test_default_grid_size(self):
        grid = default_grid()
        assert len(grid) == 3 * 2 * 3  # dc_ratios x cps x loads

    def test_grid_entries_are_overrides(self):
        for entry in default_grid():
            assert {"dc_ratio", "cps", "system_load"} <= set(entry)


class TestRunWinStats:
    def test_small_study(self):
        grid = default_grid(loads=(0.5, 0.9), dc_ratios=(2.0,), cps_values=(100.0,))
        stats = run_win_stats(grid, replications=1, total_time=40_000.0)
        assert stats.comparisons == 2
        assert stats.dlt_wins + stats.user_split_wins + stats.ties == 2

    def test_render(self):
        grid = default_grid(loads=(0.6,), dc_ratios=(2.0,), cps_values=(100.0,))
        stats = run_win_stats(grid, replications=1, total_time=40_000.0)
        text = render_win_stats(stats)
        assert "Section 5.2" in text
        assert "paper: 8.22%" in text

    def test_fifo_policy_variant(self):
        grid = default_grid(loads=(0.6,), dc_ratios=(2.0,), cps_values=(100.0,))
        stats = run_win_stats(
            grid, policy="FIFO", replications=1, total_time=40_000.0
        )
        assert stats.comparisons == 1
