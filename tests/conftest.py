"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import ClusterSpec
from repro.core.task import DivisibleTask
from repro.workload.spec import SimulationConfig


@pytest.fixture
def baseline_cluster() -> ClusterSpec:
    """The Section 5.1 baseline cluster: N=16, Cms=1, Cps=100."""
    return ClusterSpec(nodes=16, cms=1.0, cps=100.0)


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """A tiny cluster for hand-verifiable scenarios."""
    return ClusterSpec(nodes=4, cms=1.0, cps=10.0)


@pytest.fixture
def baseline_config() -> SimulationConfig:
    """A fast-running baseline-shaped configuration."""
    return SimulationConfig(
        nodes=16,
        cms=1.0,
        cps=100.0,
        system_load=0.5,
        avg_sigma=200.0,
        dc_ratio=2.0,
        total_time=60_000.0,
        seed=1234,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded generator for deterministic stochastic tests."""
    return np.random.default_rng(20070227)


def make_task(
    task_id: int = 0,
    arrival: float = 0.0,
    sigma: float = 100.0,
    deadline: float = 10_000.0,
) -> DivisibleTask:
    """Terse task factory used across test modules."""
    return DivisibleTask(
        task_id=task_id, arrival=arrival, sigma=sigma, deadline=deadline
    )
