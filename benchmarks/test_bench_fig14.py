"""Figure 14 — DLT-Based vs User-Split: Cps and DCRatio effects (EDF).

Paper: panels a-f sweep Cps at DCRatio = 2 (DLT dominates); panels g-h
relax deadlines (DCRatio 3 and 10) where User-Split occasionally wins by
negligible margins (Section 5.2).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize(
    "panel", ["fig14a", "fig14b", "fig14c", "fig14d", "fig14e", "fig14f"]
)
def test_fig14_cps_effects(benchmark, panel_runner, panel):
    panel_runner(
        benchmark, panel, extra_check=lambda r: assert_dlt_no_worse(r, tol=0.06)
    )


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("panel", ["fig14g", "fig14h"])
def test_fig14_loose_deadlines(benchmark, panel_runner, panel):
    result = panel_runner(benchmark, panel)
    a1, a2 = result.spec.algorithms
    assert result.mean_gap(a1, a2) > -0.05  # no runaway User-Split win
