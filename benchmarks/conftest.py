"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one figure panel of the paper at a
configurable scale and checks the *shape* the paper reports (who wins,
where curves converge).  Scale knobs (environment variables):

``REPRO_BENCH_TOTAL_TIME``
    Horizon per run in time units (default 60,000; paper: 10,000,000).
``REPRO_BENCH_REPS``
    Replications per point (default 2; paper: 10).
``REPRO_BENCH_LOADS``
    Comma-separated SystemLoad grid (default "0.3,0.6,0.9"; paper:
    0.1..1.0).

Example paper-scale invocation (takes hours)::

    REPRO_BENCH_TOTAL_TIME=10000000 REPRO_BENCH_REPS=10 \\
    REPRO_BENCH_LOADS=0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0 \\
    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.report import render_panel
from repro.experiments.sweep import PanelResult, run_panel


def bench_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_TOTAL_TIME", "60000"))


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", "2"))


def bench_loads() -> tuple[float, ...]:
    raw = os.environ.get("REPRO_BENCH_LOADS", "0.3,0.6,0.9")
    return tuple(float(x) for x in raw.split(","))


def regenerate_panel(panel_id: str) -> PanelResult:
    """Run one figure panel at bench scale."""
    return run_panel(
        FIGURES[panel_id],
        loads=bench_loads(),
        replications=bench_reps(),
        total_time=bench_total_time(),
        seed=2007,
    )


def check_and_report(result: PanelResult) -> None:
    """Shape checks shared by all DLT-vs-baseline panels + series print."""
    print()
    print(render_panel(result, show_ci=True))
    for alg in result.spec.algorithms:
        for p in result.series[alg]:
            assert 0.0 <= p.mean <= 1.0, f"{alg}: reject ratio out of range"


@pytest.fixture
def panel_runner():
    """Fixture handing benchmarks the regenerate+check pipeline."""

    def run(benchmark, panel_id: str, extra_check=None) -> PanelResult:
        result = benchmark.pedantic(
            regenerate_panel, args=(panel_id,), rounds=1, iterations=1
        )
        check_and_report(result)
        if extra_check is not None:
            extra_check(result)
        return result

    return run


def assert_dlt_no_worse(result: PanelResult, tol: float = 0.02) -> None:
    """The paper's claim for DLT-vs-OPR panels: DLT never (meaningfully)
    worse.

    The allowance is ``max(tol, 4 expected tasks)`` per point: greedy
    admission is not path-wise monotone (see EXPERIMENTS.md), so at smoke
    scale a handful of tasks of noise is expected; at paper scale the
    same rule tightens to ``tol`` automatically.
    """
    from repro.core import dlt as _dlt

    dlt_alg, base_alg = result.spec.algorithms
    cfg = result.spec.base_config(system_load=1.0, total_time=1.0, seed=0)
    e_avg = _dlt.execution_time(cfg.avg_sigma, cfg.nodes, cfg.cms, cfg.cps)
    for i, load in enumerate(result.loads):
        expected_arrivals = result.total_time * load / e_avg
        allowance = max(tol, 4.0 / max(expected_arrivals, 1.0))
        d = result.series[dlt_alg][i].mean
        b = result.series[base_alg][i].mean
        assert d <= b + allowance, (
            f"{result.spec.panel_id} @ load {load}: {dlt_alg}={d:.4f} worse "
            f"than {base_alg}={b:.4f} beyond allowance {allowance:.4f}"
        )


def assert_gap_small(result: PanelResult, bound: float = 0.01) -> None:
    """For DCRatio=100 panels the two curves must nearly coincide."""
    a1, a2 = result.spec.algorithms
    gap = abs(result.mean_gap(a1, a2))
    assert gap <= bound, f"{result.spec.panel_id}: |gap|={gap:.4f} > {bound}"


# ---------------------------------------------------------------------------
# Engine capture-and-replay harness (used by test_bench_core.py).
#
# The harness itself graduated into :mod:`repro.obs.profile` (it now also
# powers the ``repro profile`` CLI); the benchmarks import it from there
# under the historical names.  See that module for the methodology notes
# (why capture-and-replay, why best-of timing, the identity check).
# ---------------------------------------------------------------------------

from repro.obs.profile import (  # noqa: E402  (re-exports for benchmarks)
    AdmissionTap as _AdmissionTap,
    build_tests as _build_tests,
    capture_cluster_calls,
    capture_fleet_calls,
    replay_calls,
)

__all_harness__ = [
    "_AdmissionTap",
    "_build_tests",
    "capture_cluster_calls",
    "capture_fleet_calls",
    "replay_calls",
]


# ---------------------------------------------------------------------------
# Per-engine throughput report (printed at the end of the session).
# ---------------------------------------------------------------------------

_ENGINE_ROWS: list[tuple[str, str, float, int]] = []


@pytest.fixture
def engine_report():
    """Benchmarks call ``add(bench, engine, seconds, placements)``; the
    rows come out as a decisions/sec table in the terminal summary."""

    def add(bench: str, engine: str, seconds: float, placements: int) -> None:
        _ENGINE_ROWS.append((bench, engine, seconds, placements))

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ENGINE_ROWS:
        return
    tr = terminalreporter
    tr.section("admission-engine throughput (replayed decisions/sec)")
    tr.write_line(
        f"{'benchmark':<34} {'engine':<10} {'seconds':>9} "
        f"{'calls':>7} {'decisions/sec':>14}"
    )
    for bench, engine, seconds, placements in _ENGINE_ROWS:
        rate = placements / seconds if seconds > 0 else float("inf")
        tr.write_line(
            f"{bench:<34} {engine:<10} {seconds:>9.4f} {placements:>7} {rate:>14.0f}"
        )
