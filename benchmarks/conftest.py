"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one figure panel of the paper at a
configurable scale and checks the *shape* the paper reports (who wins,
where curves converge).  Scale knobs (environment variables):

``REPRO_BENCH_TOTAL_TIME``
    Horizon per run in time units (default 60,000; paper: 10,000,000).
``REPRO_BENCH_REPS``
    Replications per point (default 2; paper: 10).
``REPRO_BENCH_LOADS``
    Comma-separated SystemLoad grid (default "0.3,0.6,0.9"; paper:
    0.1..1.0).

Example paper-scale invocation (takes hours)::

    REPRO_BENCH_TOTAL_TIME=10000000 REPRO_BENCH_REPS=10 \\
    REPRO_BENCH_LOADS=0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0 \\
    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.algorithms import make_algorithm
from repro.core.fastpath import make_admission_test
from repro.experiments.figures import FIGURES
from repro.experiments.report import render_panel
from repro.experiments.sweep import PanelResult, run_panel
from repro.fleet.sim import FleetSimulation
from repro.sim.cluster_sim import ClusterSimulation


def bench_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_TOTAL_TIME", "60000"))


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", "2"))


def bench_loads() -> tuple[float, ...]:
    raw = os.environ.get("REPRO_BENCH_LOADS", "0.3,0.6,0.9")
    return tuple(float(x) for x in raw.split(","))


def regenerate_panel(panel_id: str) -> PanelResult:
    """Run one figure panel at bench scale."""
    return run_panel(
        FIGURES[panel_id],
        loads=bench_loads(),
        replications=bench_reps(),
        total_time=bench_total_time(),
        seed=2007,
    )


def check_and_report(result: PanelResult) -> None:
    """Shape checks shared by all DLT-vs-baseline panels + series print."""
    print()
    print(render_panel(result, show_ci=True))
    for alg in result.spec.algorithms:
        for p in result.series[alg]:
            assert 0.0 <= p.mean <= 1.0, f"{alg}: reject ratio out of range"


@pytest.fixture
def panel_runner():
    """Fixture handing benchmarks the regenerate+check pipeline."""

    def run(benchmark, panel_id: str, extra_check=None) -> PanelResult:
        result = benchmark.pedantic(
            regenerate_panel, args=(panel_id,), rounds=1, iterations=1
        )
        check_and_report(result)
        if extra_check is not None:
            extra_check(result)
        return result

    return run


def assert_dlt_no_worse(result: PanelResult, tol: float = 0.02) -> None:
    """The paper's claim for DLT-vs-OPR panels: DLT never (meaningfully)
    worse.

    The allowance is ``max(tol, 4 expected tasks)`` per point: greedy
    admission is not path-wise monotone (see EXPERIMENTS.md), so at smoke
    scale a handful of tasks of noise is expected; at paper scale the
    same rule tightens to ``tol`` automatically.
    """
    from repro.core import dlt as _dlt

    dlt_alg, base_alg = result.spec.algorithms
    cfg = result.spec.base_config(system_load=1.0, total_time=1.0, seed=0)
    e_avg = _dlt.execution_time(cfg.avg_sigma, cfg.nodes, cfg.cms, cfg.cps)
    for i, load in enumerate(result.loads):
        expected_arrivals = result.total_time * load / e_avg
        allowance = max(tol, 4.0 / max(expected_arrivals, 1.0))
        d = result.series[dlt_alg][i].mean
        b = result.series[base_alg][i].mean
        assert d <= b + allowance, (
            f"{result.spec.panel_id} @ load {load}: {dlt_alg}={d:.4f} worse "
            f"than {base_alg}={b:.4f} beyond allowance {allowance:.4f}"
        )


def assert_gap_small(result: PanelResult, bound: float = 0.01) -> None:
    """For DCRatio=100 panels the two curves must nearly coincide."""
    a1, a2 = result.spec.algorithms
    gap = abs(result.mean_gap(a1, a2))
    assert gap <= bound, f"{result.spec.panel_id}: |gap|={gap:.4f} > {bound}"


# ---------------------------------------------------------------------------
# Engine capture-and-replay harness (used by test_bench_core.py).
#
# Full-simulation wall clock mixes the admission engine with constant
# event-loop overhead that is identical for every engine, which dilutes
# the measured ratio.  The honest engine comparison is therefore:
# record the *real* ``try_admit``/probe call stream produced by a
# reference-engine simulation (task, frozen waiting queue, a copy of the
# committed reservation state, now), then replay that exact stream
# through each engine with fresh test instances and time only the
# engine.  Replays also double as an identity check: every engine must
# return the same decision stream bit for bit.
# ---------------------------------------------------------------------------


class _AdmissionTap:
    """Wraps a schedulability test, recording every call it serves."""

    def __init__(self, inner, calls, member=0, flag=None):
        self.inner = inner
        self.calls = calls
        self.member = member
        self.flag = flag or {"probing": False}

    def try_admit(self, new_task, waiting, reservations, now):
        self.calls.append(
            (
                self.flag["probing"],
                self.member,
                new_task,
                tuple(waiting),
                reservations.copy(),
                now,
            )
        )
        return self.inner.try_admit(new_task, waiting, reservations, now)

    def probe_completion(self, new_task, waiting, reservations, now):
        # The fleet probe closure feature-detects this method; the
        # reference engine underneath only has ``try_admit``.
        self.calls.append(
            (True, self.member, new_task, tuple(waiting), reservations.copy(), now)
        )
        decision = self.inner.try_admit(new_task, waiting, reservations, now)
        if decision.accepted:
            return decision.plans[new_task.task_id].est_completion
        return None


def capture_cluster_calls(scenario, algorithm: str):
    """Run one reference simulation, recording the admission call stream.

    Returns ``(calls, output)`` — the output carries the stats (reject
    ratio, arrival count) for the throughput panel.
    """
    tasks = scenario.generate_tasks()
    instance = make_algorithm(algorithm, rng=scenario.algorithm_rng())
    sim = ClusterSimulation(
        scenario.cluster,
        instance,
        tasks,
        horizon=scenario.total_time,
        validate=False,
        admission_engine="reference",
    )
    calls = []
    sim.scheduler.test = _AdmissionTap(sim.scheduler.test, calls)
    output = sim.run()
    return calls, output


def capture_fleet_calls(scenario, algorithm: str):
    """Fleet variant: taps every member test and tags probe-phase calls.

    Probes are distinguished by wrapping ``policy.route`` so the member
    kernel (``probe_completion``) is exercised on replay exactly where
    the live fleet uses it.  Returns ``(calls, fleet_output_list)``.
    """
    sim = FleetSimulation(
        scenario, algorithm, admission_engine="reference", validate=False
    )
    calls: list = []
    flag = {"probing": False}
    for i, member in enumerate(sim.sims):
        member.scheduler.test = _AdmissionTap(
            member.scheduler.test, calls, member=i, flag=flag
        )
    route = sim.policy.route

    def tagged_route(task, views):
        flag["probing"] = True
        try:
            return route(task, views)
        finally:
            flag["probing"] = False

    sim.policy.route = tagged_route
    result = sim.run()
    return calls, result


def _build_tests(scenario, algorithm: str, engine: str, fleet: bool):
    if not fleet:
        instance = make_algorithm(algorithm, rng=scenario.algorithm_rng())
        return [
            make_admission_test(
                instance.policy, instance.partitioner, scenario.cluster, engine=engine
            )
        ]
    tests = []
    for i in range(scenario.n_clusters):
        member = scenario.member_scenario(i)
        instance = make_algorithm(algorithm, rng=member.algorithm_rng())
        tests.append(
            make_admission_test(
                instance.policy, instance.partitioner, member.cluster, engine=engine
            )
        )
    return tests


def replay_calls(scenario, algorithm: str, engine: str, calls, *, reps=2, fleet=False):
    """Replay a captured call stream through ``engine``; best-of-``reps``.

    Probe-tagged calls go through ``probe_completion`` when the engine
    offers it (the batch member kernel), mirroring the live fleet's
    feature detection.  Returns ``(best_seconds, outcomes)`` where each
    outcome is the accepted task's est_completion or ``None`` — the
    engine-portable projection of the decision, asserted identical
    across reps (and, by callers, across engines).
    """
    best = float("inf")
    outcomes = None
    for _ in range(reps):
        tests = _build_tests(scenario, algorithm, engine, fleet)
        probes = [getattr(t, "probe_completion", None) for t in tests]
        start = time.perf_counter()
        got = []
        for is_probe, member, task, waiting, reservations, now in calls:
            probe = probes[member]
            if is_probe and probe is not None:
                got.append(probe(task, waiting, reservations, now))
            else:
                decision = tests[member].try_admit(task, waiting, reservations, now)
                got.append(
                    decision.plans[task.task_id].est_completion
                    if decision.accepted
                    else None
                )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if outcomes is None:
            outcomes = got
        else:
            assert got == outcomes, f"{engine}: replay is not deterministic"
    return best, outcomes


# ---------------------------------------------------------------------------
# Per-engine throughput report (printed at the end of the session).
# ---------------------------------------------------------------------------

_ENGINE_ROWS: list[tuple[str, str, float, int]] = []


@pytest.fixture
def engine_report():
    """Benchmarks call ``add(bench, engine, seconds, placements)``; the
    rows come out as a decisions/sec table in the terminal summary."""

    def add(bench: str, engine: str, seconds: float, placements: int) -> None:
        _ENGINE_ROWS.append((bench, engine, seconds, placements))

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ENGINE_ROWS:
        return
    tr = terminalreporter
    tr.section("admission-engine throughput (replayed decisions/sec)")
    tr.write_line(
        f"{'benchmark':<34} {'engine':<10} {'seconds':>9} "
        f"{'calls':>7} {'decisions/sec':>14}"
    )
    for bench, engine, seconds, placements in _ENGINE_ROWS:
        rate = placements / seconds if seconds > 0 else float("inf")
        tr.write_line(
            f"{bench:<34} {engine:<10} {seconds:>9.4f} {placements:>7} {rate:>14.0f}"
        )
