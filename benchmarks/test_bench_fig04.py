"""Figure 4 — Benefits of Utilizing IITs: DCRatio effects (EDF).

Paper: EDF-DLT stays at or below EDF-OPR-MN for DCRatio ∈ {3, 10, 20,
100}, and the two curves *converge* as DCRatio grows — looser deadlines
mean fewer nodes per task, hence fewer Inserted Idle Times to exploit.
At DCRatio = 100 the algorithms "perform almost the same" (Fig. 4d).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse, assert_gap_small


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("panel", ["fig4a", "fig4b", "fig4c"])
def test_fig4_dlt_no_worse(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)


@pytest.mark.benchmark(group="fig4")
def test_fig4d_curves_converge(benchmark, panel_runner):
    """DCRatio = 100: the IIT benefit vanishes (paper Fig. 4d)."""
    panel_runner(benchmark, "fig4d", extra_check=assert_gap_small)
