"""Figure 5 — DLT-Based vs User-Split partitioning (EDF headline).

Paper: at the baseline DCRatio = 2 (Fig. 5a) EDF-DLT always beats
EDF-UserSplit; at DCRatio = 10 (Fig. 5b) User-Split *occasionally* wins,
but only by negligible margins (Section 5.2: when User-Split wins, the
average gain is 0.016 vs 0.121 when DLT wins).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig5")
def test_fig5a_dlt_beats_user_split(benchmark, panel_runner):
    # User-Split is stochastic; allow smoke-scale noise in the margin.
    panel_runner(
        benchmark,
        "fig5a",
        extra_check=lambda r: assert_dlt_no_worse(r, tol=0.06),
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5b_loose_deadlines(benchmark, panel_runner):
    """DCRatio = 10: no winner asserted (the paper reports occasional
    User-Split wins here); only well-formedness and the aggregate gap
    direction are reported."""
    result = panel_runner(benchmark, "fig5b")
    a1, a2 = result.spec.algorithms
    # The mean gap may be small but an *enormous* User-Split advantage
    # would signal a modelling bug.
    assert result.mean_gap(a1, a2) > -0.05
