"""Figure 9 — Benefits of Utilizing IITs: DCRatio effects (FIFO).

Paper: the FIFO pair mirrors the EDF pair of Figure 4 — FIFO-DLT at or
below FIFO-OPR-MN, with convergence as DCRatio grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse, assert_gap_small


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("panel", ["fig9a", "fig9b", "fig9c"])
def test_fig9_dlt_no_worse(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)


@pytest.mark.benchmark(group="fig9")
def test_fig9d_curves_converge(benchmark, panel_runner):
    panel_runner(benchmark, "fig9d", extra_check=assert_gap_small)
