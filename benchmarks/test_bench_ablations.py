"""Ablation benches — quantifying DESIGN.md §3's model decisions.

Not paper figures: these regenerate the evidence behind each documented
reading of the under-specified details, plus the future-work extension.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_total_time
from repro.ext.ablations import ABLATIONS, run_ablation
from repro.workload.spec import SimulationConfig


def ablation_config() -> SimulationConfig:
    return SimulationConfig(
        nodes=16,
        cms=1.0,
        cps=100.0,
        system_load=0.8,
        avg_sigma=200.0,
        dc_ratio=2.0,
        total_time=max(bench_total_time(), 150_000.0),
        seed=5,
    )


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("name", sorted(ABLATIONS))
def test_ablation(benchmark, name):
    result = benchmark.pedantic(
        run_ablation, args=(name, ablation_config()), rounds=1, iterations=1
    )
    print()
    print(result.summary())
    # Well-formedness on both arms.
    for arm in (result.baseline, result.variant):
        assert 0.0 <= arm.reject_ratio <= 1.0
    if name == "eager-release":
        # Strictly more available capacity can only help (paired seeds).
        assert result.reject_ratio_delta <= 0.02
    if name == "fixed-point-n":
        # The generous node-count rule never hurts DLT.
        assert result.reject_ratio_delta <= 0.02
    if name == "shared-head-link":
        # Contention can only add deadline misses, never remove arrivals.
        assert result.variant.arrivals == result.baseline.arrivals
