"""Figure 15 — DLT-Based vs User-Split: Avgσ effects (FIFO).

Paper: FIFO mirror of Figure 13.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig15")
@pytest.mark.parametrize("panel", ["fig15a", "fig15b", "fig15c", "fig15d"])
def test_fig15_avg_sigma_effects(benchmark, panel_runner, panel):
    panel_runner(
        benchmark, panel, extra_check=lambda r: assert_dlt_no_worse(r, tol=0.06)
    )
