"""Figure 12 — Benefits of Utilizing IITs: Cps effects (FIFO).

Paper: FIFO-DLT at or below FIFO-OPR-MN for
Cps ∈ {10, 50, 500, 1000, 5000, 10000}.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize(
    "panel", ["fig12a", "fig12b", "fig12c", "fig12d", "fig12e", "fig12f"]
)
def test_fig12_cps_effects(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)
