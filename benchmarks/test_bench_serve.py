"""Benchmark — end-to-end decisions/sec through the live admission service.

Replays one fleet scenario's task stream through a real
:class:`~repro.serve.server.BackgroundServer` (TCP loopback, framed
protocol, watermark merge, simulation) at 1, 4 and 16 concurrent
clients, each submitting a round-robin shard of the stream with a
pipelined window.  Every run's finalize payload is checked bit-identical
against the offline simulation — the benchmark measures the *service*,
never a shortcut around it.

Emits ``BENCH_serve.json`` at the repo root.  The gated quantities are
the concurrency **retention ratios** (``rate_4/rate_1`` and
``rate_16/rate_1``): raw decisions/sec are machine-bound, but how much
throughput survives the merge barrier when submitters multiply is a
property of the implementation and transfers across machines
(``scripts/check_perf.py --serve-baseline`` compares them in CI).

Scale knobs (environment variables):

``REPRO_BENCH_SERVE_TOTAL_TIME``
    Horizon of the shared stream (default 1,000,000 — about 1,000 tasks).
``REPRO_BENCH_SERVE_MIN_RETENTION4`` / ``..._RETENTION16``
    Hard floors on the retention ratios (defaults 0.3 / 0.2).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.fleet import FleetScenario, simulate_fleet
from repro.serve import (
    AdmissionClient,
    BackgroundServer,
    loopback_diff,
    make_backend,
    replay_tasks,
)

#: Where the perf record lands (repo root, next to BENCH_core.json).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Concurrency levels measured (and keyed in the emitted record).
CLIENT_COUNTS = (1, 4, 16)

#: Gate thresholds, embedded in the emitted record for the CI gate.
#: Overridable so an intentional, reviewed trade can lower them in the
#: PR that makes it (docs/performance.md).
#: Coalesced dispatch (submit_many + batched frame writes) keeps
#: multi-client throughput at or above the single-client rate on an
#: unloaded machine; the floors stay below 1.0 only to absorb shared-CI
#: scheduler noise.
RETENTION4_MIN = float(os.environ.get("REPRO_BENCH_SERVE_MIN_RETENTION4", "0.5"))
RETENTION16_MIN = float(os.environ.get("REPRO_BENCH_SERVE_MIN_RETENTION16", "0.5"))

#: Client-count -> measured dict; flushed by test_emit_perf_record.
RESULTS: dict[int, dict] = {}

#: Pipeline window per client (the replay driver's default).
WINDOW = 64


def serve_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SERVE_TOTAL_TIME", "1000000"))


def serve_scenario() -> FleetScenario:
    """The documented 4-cluster fleet at bench scale (docs/fleet.md)."""
    return FleetScenario.uniform(
        n_clusters=4,
        system_load=0.6,
        total_time=serve_total_time(),
        seed=2007,
        nodes=8,
        cluster_spread=0.8,
        name="bench-serve",
    )


def _replay_concurrently(scenario: FleetScenario, tasks, n_clients: int):
    """One full server-mediated replay; returns (seconds, payload, batches).

    ``batches`` is the server's ``serve_coalesced_batch_size`` histogram
    cell (count / sum over the whole replay) — the direct read on how
    many submissions each barrier release handed the backend at once.
    """
    backend = make_backend(scenario, "EDF-DLT")
    with BackgroundServer(backend) as bg:
        host, port = bg.address
        clients = [AdmissionClient(host, port) for _ in range(n_clients)]
        try:
            for client in clients:
                client.connect()
                # Every submitter joins the merge barrier before any
                # shard starts, so no client can race ahead.
                client.open_stream()
            shards = [tasks[i::n_clients] for i in range(n_clients)]
            threads = [
                threading.Thread(
                    target=replay_tasks,
                    args=(client, shard),
                    kwargs={"window": WINDOW},
                )
                for client, shard in zip(clients, shards)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            seconds = time.perf_counter() - t0
            snap = clients[0].metrics()
            batches = snap.get("serve_coalesced_batch_size", {})
            payload = clients[0].finalize()
        finally:
            for client in clients:
                client.close()
    return seconds, payload, batches


@pytest.mark.benchmark(group="serve-throughput")
@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_bench_serve_decisions_per_sec(benchmark, n_clients):
    """Decisions/sec at ``n_clients`` concurrent submitters."""
    scenario = serve_scenario()
    tasks = scenario.stream_scenario().generate_tasks()
    offline = simulate_fleet(scenario, "EDF-DLT")

    def run():
        # Best-of-2 fresh servers: a jitter guard for the tiny wall times.
        first = _replay_concurrently(scenario, tasks, n_clients)
        second = _replay_concurrently(scenario, tasks, n_clients)
        return min(first, second, key=lambda triple: triple[0])

    seconds, payload, batches = benchmark.pedantic(run, rounds=1, iterations=1)
    problems = loopback_diff(payload, offline)
    assert problems == [], problems[:3]
    batch_count = int(batches.get("count", 0))
    batch_sum = float(batches.get("sum", 0.0))
    # Every submission went through exactly one coalesced pass.
    assert batch_sum == float(len(tasks)), (
        f"coalesced batches cover {batch_sum:g} submissions, "
        f"expected {len(tasks)}"
    )
    RESULTS[n_clients] = {
        "clients": n_clients,
        "tasks": len(tasks),
        "seconds": seconds,
        "decisions_per_sec": len(tasks) / seconds,
        "coalesced_batches": batch_count,
        "mean_batch_size": batch_sum / batch_count if batch_count else 0.0,
    }


def test_emit_perf_record():
    """Write BENCH_serve.json and enforce the retention floors."""
    if set(CLIENT_COUNTS) - set(RESULTS):
        pytest.skip("benchmark sections did not all run")

    rate_1 = RESULTS[1]["decisions_per_sec"]
    retention = {
        n: RESULTS[n]["decisions_per_sec"] / rate_1 for n in CLIENT_COUNTS[1:]
    }
    assert retention[4] >= RETENTION4_MIN, (
        f"4-client throughput retention {retention[4]:.2f} "
        f"(need >= {RETENTION4_MIN})"
    )
    assert retention[16] >= RETENTION16_MIN, (
        f"16-client throughput retention {retention[16]:.2f} "
        f"(need >= {RETENTION16_MIN})"
    )

    record = {
        "benchmark": "serve_throughput",
        "config": {
            "clusters": 4,
            "nodes": 8,
            "cluster_spread": 0.8,
            "system_load": 0.6,
            "total_time": serve_total_time(),
            "seed": 2007,
            "algorithm": "EDF-DLT",
            "window": WINDOW,
            "client_counts": list(CLIENT_COUNTS),
        },
        "gates": {
            "retention_4_min": RETENTION4_MIN,
            "retention_16_min": RETENTION16_MIN,
        },
        "results": {str(n): RESULTS[n] for n in CLIENT_COUNTS},
        "retention_4": retention[4],
        "retention_16": retention[16],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert RECORD_PATH.exists()
