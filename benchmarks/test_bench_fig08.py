"""Figure 8 — Benefits of Utilizing IITs: Cps effects (EDF).

Paper: the EDF-DLT advantage survives scaling the unit computation cost
across Cps ∈ {10, 50, 500, 1000, 5000, 10000} (Appendix Fig. 8; the
baseline Cps=100 panel is Figure 3a).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize(
    "panel", ["fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f"]
)
def test_fig8_cps_effects(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)
