"""Figure 11 — Benefits of Utilizing IITs: Cms effects (FIFO).

Paper: FIFO-DLT at or below FIFO-OPR-MN for Cms ∈ {1, 2, 4, 8}.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("panel", ["fig11a", "fig11b", "fig11c", "fig11d"])
def test_fig11_cms_effects(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)
