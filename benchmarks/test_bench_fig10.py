"""Figure 10 — Benefits of Utilizing IITs: Avgσ effects (FIFO).

Paper: FIFO-DLT at or below FIFO-OPR-MN for Avgσ ∈ {100, 200, 400, 800}.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("panel", ["fig10a", "fig10b", "fig10c", "fig10d"])
def test_fig10_avg_sigma_effects(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)
