"""Figure 7 — Benefits of Utilizing IITs: Cms effects (EDF).

Paper: the EDF-DLT advantage survives scaling the unit transmission cost
across Cms ∈ {1, 2, 4, 8} (Appendix Fig. 7; the TR's fig7c plot header
says cms=2 but the caption's Cms=4 is the intended sweep value).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("panel", ["fig7a", "fig7b", "fig7c", "fig7d"])
def test_fig7_cms_effects(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)
