"""Figure 6 — Benefits of Utilizing IITs: Avgσ effects (EDF).

Paper: the EDF-DLT advantage over EDF-OPR-MN survives scaling the average
task data size across Avgσ ∈ {100, 200, 400, 800} (Appendix Fig. 6).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("panel", ["fig6a", "fig6b", "fig6c", "fig6d"])
def test_fig6_avg_sigma_effects(benchmark, panel_runner, panel):
    panel_runner(benchmark, panel, extra_check=assert_dlt_no_worse)
