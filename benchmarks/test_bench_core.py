"""Benchmark — the optimized admission engines against the reference walk.

Both workloads are measured with the capture-and-replay harness from
``conftest.py``: a reference-engine simulation records its real
``try_admit``/probe call stream (task, frozen waiting queue, a copy of
the committed reservation state, clock), then the *same* stream replays
through each of the three engines with fresh test instances.  Timing the
replay isolates the engine from the constant event-loop overhead that a
full-simulation wall clock adds equally to every engine, and the replay
outcomes double as the identity check — all engines must produce the
same decision stream.

* **Core admission** — the paper's 16-node cluster with loose deadlines
  at three load points (the admission-throughput panel).  The gate sits
  at the heaviest point, where each arrival re-plans a deep waiting
  queue: the batch engine must beat the reference by ``≥ 15x``.
* **Fleet probing** — a 4-cluster, 16-nodes-per-member
  ``cluster_spread=0.8`` fleet under the probing ``earliest-finish``
  router (one full placement per member per arrival) plus the
  ``round-robin`` and ``least-loaded`` baselines.  Earliest-finish must
  gain ``≥ 5x`` — this is where the batch engine's ``probe_completion``
  member kernel earns its keep.

Emits ``BENCH_core.json`` at the repo root — the baseline for the CI
perf regression gate (``scripts/check_perf.py``, see
``docs/performance.md``).  The gated quantities are the *speedups*
(batch and fast over reference on the same machine and call stream),
which transfer across machines; absolute decisions/sec ride along for
context.

Scale knobs (environment variables):

``REPRO_BENCH_CORE_TOTAL_TIME``
    Horizon of the core admission runs (default 400,000).
``REPRO_BENCH_FLEET_TOTAL_TIME``
    Horizon per fleet run (default 100,000).
``REPRO_BENCH_REPLAY_REPS``
    Replay repetitions per engine; best-of wins (default 2).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from conftest import capture_cluster_calls, capture_fleet_calls, replay_calls

from repro.fleet import FleetScenario
from repro.workload.scenario import Scenario

#: Where the perf record lands (repo root, next to BENCH_fleet_routing.json).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Gate thresholds, also embedded in the emitted record for the CI gate.
#: Overridable via environment so an *intentional*, reviewed perf trade
#: can lower them explicitly in the PR that makes the trade
#: (docs/performance.md); the defaults are this PR's acceptance floors.
CORE_SPEEDUP_MIN = float(os.environ.get("REPRO_BENCH_CORE_MIN_SPEEDUP", "15.0"))
FLEET_EF_SPEEDUP_MIN = float(
    os.environ.get("REPRO_BENCH_FLEET_MIN_SPEEDUP", "5.0")
)
#: Instrumentation-disabled floor: with a registry attached but no
#: tracer (the production default), the batch engine must keep at least
#: this fraction of its uninstrumented decisions/sec (repro.obs promises
#: near-zero disabled cost).  Tracer-on overhead is recorded ungated.
TRACING_DISABLED_RATIO_MIN = float(
    os.environ.get("REPRO_BENCH_TRACING_DISABLED_MIN", "0.95")
)
#: Deep-queue checkpoint gate: on the FIFO-ordered overload stream the
#: batch engine with prefix checkpoints must beat its own
#: checkpoint-ablated replay (the PR 7 engine) by at least this factor.
CKPT_SPEEDUP_MIN = float(os.environ.get("REPRO_BENCH_CKPT_MIN_SPEEDUP", "2.0"))

#: All selectable engines; "reference" is the timing baseline.
ENGINES = ("reference", "fast", "batch")

#: The admission-throughput panel's load points; the gate sits at the
#: heaviest one, where the waiting queue runs deepest.
PANEL_LOADS = (3.0, 6.0, 10.0)
GATED_LOAD = 10.0

#: The deep-queue panel's deadline looseness: 120x the mean run keeps the
#: waiting queue ~120 deep at the gated load, the regime where admission
#: cost is pure queue replay and the prefix-checkpoint store pays off.
DEEP_QUEUE_DC_RATIO = 120.0

#: Section name -> measured dict; flushed by test_emit_perf_record.
RESULTS: dict[str, dict] = {}


def core_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_CORE_TOTAL_TIME", "400000"))


def fleet_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_FLEET_TOTAL_TIME", "100000"))


def replay_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPLAY_REPS", "2"))


def admission_heavy_scenario(system_load: float) -> Scenario:
    """16-node paper cluster, overloaded, deadlines 30x the mean run.

    Loose deadlines keep rejected work rare enough that the waiting queue
    stays deep, so each arrival re-plans many tasks — the regime the
    engines' queue-replay kernels target (and the regime a saturated
    production head node actually lives in).
    """
    return Scenario.paper_baseline(
        system_load=system_load,
        total_time=core_total_time(),
        seed=2007,
        dc_ratio=30.0,
        name="bench-core-admission",
    )


def probe_heavy_fleet() -> FleetScenario:
    """A probing-dominated fleet: 4 spread clusters x 16 nodes, 3x load.

    Every arrival costs one full placement per member under the probing
    routers, and most placements are fresh newcomers (queue of one), so
    the per-call engine overhead — not the queue replay — dominates.
    """
    return FleetScenario.uniform(
        n_clusters=4,
        system_load=3.0,
        total_time=fleet_total_time(),
        seed=2007,
        nodes=16,
        cluster_spread=0.8,
        dc_ratio=30.0,
        name="bench-core-fleet",
    )


def _engine_sections(scenario, calls, *, fleet: bool, report, bench: str):
    """Replay ``calls`` through every engine; return per-engine timings.

    Asserts the outcome stream is identical across engines (the replay
    form of the bit-identity contract).
    """
    sections = {}
    baseline_outcomes = None
    for engine in ENGINES:
        seconds, outcomes = replay_calls(
            scenario, "EDF-DLT", engine, calls, reps=replay_reps(), fleet=fleet
        )
        if baseline_outcomes is None:
            baseline_outcomes = outcomes
        else:
            assert outcomes == baseline_outcomes, (
                f"{engine}: replayed decisions differ from reference"
            )
        sections[engine] = seconds
        report(bench, engine, seconds, len(calls))
    return sections


@pytest.mark.benchmark(group="core-admission")
def test_bench_core_admission(benchmark, engine_report):
    """Admission-heavy single cluster, three load points, three engines."""

    def run():
        panel = {}
        for load in PANEL_LOADS:
            scenario = admission_heavy_scenario(load)
            calls, output = capture_cluster_calls(scenario, "EDF-DLT")
            seconds = _engine_sections(
                scenario,
                calls,
                fleet=False,
                report=engine_report,
                bench=f"core-admission load={load:g}",
            )
            stats = output.stats
            panel[load] = {
                "calls": len(calls),
                "arrivals": stats.arrivals,
                "replanned_tasks": stats.replanned_tasks,
                "reject_ratio": stats.reject_ratio,
                "engines": {
                    engine: {
                        "seconds": seconds[engine],
                        "decisions_per_sec": len(calls) / seconds[engine],
                        "arrivals_per_sec": stats.arrivals / seconds[engine],
                    }
                    for engine in ENGINES
                },
            }
        return panel

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    gated = panel[GATED_LOAD]

    def engine_seconds(engine):
        return gated["engines"][engine]["seconds"]

    RESULTS["core"] = {
        "seconds_reference": engine_seconds("reference"),
        "seconds_fast": engine_seconds("fast"),
        "seconds_batch": engine_seconds("batch"),
        "speedup": engine_seconds("reference") / engine_seconds("batch"),
        "speedup_fast": engine_seconds("reference") / engine_seconds("fast"),
        "calls": gated["calls"],
        "arrivals": gated["arrivals"],
        "replanned_tasks": gated["replanned_tasks"],
        "reject_ratio": gated["reject_ratio"],
        "decisions_per_sec": {
            engine: gated["engines"][engine]["decisions_per_sec"]
            for engine in ENGINES
        },
    }
    RESULTS["throughput_panel"] = {f"{load:g}": panel[load] for load in PANEL_LOADS}
    assert RESULTS["core"]["speedup"] >= CORE_SPEEDUP_MIN, (
        f"batch admission engine only {RESULTS['core']['speedup']:.2f}x over "
        f"reference (need >= {CORE_SPEEDUP_MIN}x)"
    )


@pytest.mark.benchmark(group="core-fleet")
@pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "earliest-finish"])
def test_bench_fleet_probe_throughput(benchmark, engine_report, policy):
    """Fleet probing: per-policy replay across the three engines."""
    scenario = probe_heavy_fleet().with_policy(policy)

    def run():
        calls, fleet_output = capture_fleet_calls(scenario, "EDF-DLT")
        seconds = _engine_sections(
            scenario,
            calls,
            fleet=True,
            report=engine_report,
            bench=f"fleet {policy}",
        )
        return calls, fleet_output, seconds

    calls, fleet_output, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    routed = len(fleet_output.assignments)
    RESULTS.setdefault("fleet", {})[policy] = {
        "seconds_reference": seconds["reference"],
        "seconds_fast": seconds["fast"],
        "seconds_batch": seconds["batch"],
        "speedup": seconds["reference"] / seconds["batch"],
        "speedup_fast": seconds["reference"] / seconds["fast"],
        "calls": len(calls),
        "routed_tasks": routed,
        "reject_ratio": fleet_output.reject_ratio,
        "probe_cache_hits": fleet_output.probe_cache_hits,
        "probe_cache_misses": fleet_output.probe_cache_misses,
        "decisions_per_sec": {
            engine: len(calls) / seconds[engine] for engine in ENGINES
        },
    }


def deep_queue_scenario() -> Scenario:
    """The admission-heavy cluster with deadlines loosened to 120x.

    FIFO ordering appends each newcomer at the queue tail, so a valid
    checkpoint covers the *entire* committed queue — the panel measures
    the checkpoint store where its reach is longest, against the same
    engine with the store ablated.
    """
    return Scenario.paper_baseline(
        system_load=GATED_LOAD,
        total_time=core_total_time(),
        seed=2007,
        dc_ratio=DEEP_QUEUE_DC_RATIO,
        name="bench-core-deep-queue",
    )


@pytest.mark.benchmark(group="core-deep-queue")
def test_bench_deep_queue_checkpoint(benchmark, engine_report):
    """Prefix checkpointing on a ~120-deep FIFO queue, on vs ablated.

    One captured FIFO-DLT call stream replays through the fast and batch
    engines twice each — checkpoints on and checkpoints off — with all
    four outcome streams asserted identical (the ablation axis of the
    bit-identity contract).  The gate: batch-with-checkpoints must beat
    batch-ablated by ``CKPT_SPEEDUP_MIN``.
    """
    scenario = deep_queue_scenario()

    def run():
        calls, output = capture_cluster_calls(scenario, "FIFO-DLT")
        timings = {}
        baseline_outcomes = None
        for engine in ("fast", "batch"):
            for ckpt in (True, False):
                seconds, outcomes = replay_calls(
                    scenario,
                    "FIFO-DLT",
                    engine,
                    calls,
                    reps=replay_reps(),
                    checkpoint=ckpt,
                )
                if baseline_outcomes is None:
                    baseline_outcomes = outcomes
                else:
                    assert outcomes == baseline_outcomes, (
                        f"{engine} checkpoint={ckpt}: replayed decisions "
                        "differ across the checkpoint ablation"
                    )
                timings[(engine, ckpt)] = seconds
        return calls, output, timings

    calls, output, timings = benchmark.pedantic(run, rounds=1, iterations=1)
    for (engine, ckpt), seconds in timings.items():
        engine_report(
            f"deep-queue ckpt={'on' if ckpt else 'off'}",
            engine,
            seconds,
            len(calls),
        )
    stats = output.stats
    RESULTS["deep_queue"] = {
        "algorithm": "FIFO-DLT",
        "load": GATED_LOAD,
        "dc_ratio": DEEP_QUEUE_DC_RATIO,
        "calls": len(calls),
        "arrivals": stats.arrivals,
        "replanned_tasks": stats.replanned_tasks,
        "reject_ratio": stats.reject_ratio,
        "engines": {
            engine: {
                "seconds_checkpoint": timings[(engine, True)],
                "seconds_ablated": timings[(engine, False)],
                "checkpoint_speedup": (
                    timings[(engine, False)] / timings[(engine, True)]
                ),
                "decisions_per_sec": len(calls) / timings[(engine, True)],
                "decisions_per_sec_ablated": (
                    len(calls) / timings[(engine, False)]
                ),
            }
            for engine in ("fast", "batch")
        },
    }
    speedup = RESULTS["deep_queue"]["engines"]["batch"]["checkpoint_speedup"]
    assert speedup >= CKPT_SPEEDUP_MIN, (
        f"prefix checkpoints only {speedup:.2f}x over the ablated batch "
        f"engine on the deep-queue stream (need >= {CKPT_SPEEDUP_MIN}x)"
    )


@pytest.mark.benchmark(group="core-observability")
def test_bench_tracing_overhead(benchmark, engine_report):
    """Cost of repro.obs on the batch engine's hot path, same call stream.

    Three replays of the identical captured stream: uninstrumented
    (``obs=None`` — no registry, no tracer), registry-attached (the
    production default), and tracer-on.  The decision streams are
    asserted identical — the replay form of the zero-perturbation
    contract — and the disabled ratio (registry vs plain throughput)
    is gated at ``TRACING_DISABLED_RATIO_MIN``.
    """
    from repro.obs import Observability

    scenario = admission_heavy_scenario(GATED_LOAD)

    def run():
        calls, _output = capture_cluster_calls(scenario, "EDF-DLT")
        # The three modes run *interleaved*, one round each, and the
        # gated ratio is computed per round and the best round taken:
        # dividing timings from different rounds (or, worse, grouped
        # blocks of reps) lets drift and scheduler noise land on one
        # side of the ratio and masquerade as instrumentation overhead,
        # while within a round the machine state is as common-mode as
        # it gets.  A real regression slows the registry replay in
        # *every* round, so the best paired round still catches it;
        # extra rounds are cheap here (fractions of a second each).
        reps = max(replay_reps(), 5)
        rounds: list[tuple[float, float, float]] = []
        for _ in range(reps):
            p, plain_out = replay_calls(
                scenario, "EDF-DLT", "batch", calls, reps=1
            )
            r, registry_out = replay_calls(
                scenario,
                "EDF-DLT",
                "batch",
                calls,
                reps=1,
                obs=Observability(),
            )
            t, tracing_out = replay_calls(
                scenario,
                "EDF-DLT",
                "batch",
                calls,
                reps=1,
                obs=Observability(trace=True),
            )
            rounds.append((p, r, t))
            assert plain_out == registry_out == tracing_out, (
                "instrumented replay changed a decision "
                "(zero-perturbation contract violated)"
            )
        return calls, rounds

    calls, rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    plain_s = min(p for p, _r, _t in rounds)
    registry_s = min(r for _p, r, _t in rounds)
    tracing_s = min(t for _p, _r, t in rounds)
    engine_report("tracing plain", "batch", plain_s, len(calls))
    engine_report("tracing registry", "batch", registry_s, len(calls))
    engine_report("tracing tracer-on", "batch", tracing_s, len(calls))
    RESULTS["tracing_overhead"] = {
        "engine": "batch",
        "calls": len(calls),
        "seconds_plain": plain_s,
        "seconds_registry": registry_s,
        "seconds_tracing": tracing_s,
        # Throughput ratios vs the uninstrumented replay, paired per
        # interleaved round (same machine, same stream, moments apart —
        # the transfer-safe quantities).
        "disabled_ratio": max(p / r for p, r, _t in rounds),
        "tracing_ratio": max(p / t for p, _r, t in rounds),
        "decisions_per_sec": {
            "plain": len(calls) / plain_s,
            "registry": len(calls) / registry_s,
            "tracing": len(calls) / tracing_s,
        },
    }
    assert RESULTS["tracing_overhead"]["disabled_ratio"] >= (
        TRACING_DISABLED_RATIO_MIN
    ), (
        f"registry-attached batch engine keeps only "
        f"{RESULTS['tracing_overhead']['disabled_ratio']:.3f} of its "
        f"uninstrumented throughput (need >= {TRACING_DISABLED_RATIO_MIN})"
    )


def test_emit_perf_record():
    """Write BENCH_core.json and enforce the headline speedups."""
    if "core" not in RESULTS or len(RESULTS.get("fleet", {})) < 3:
        pytest.skip("benchmark sections did not all run")

    ef = RESULTS["fleet"]["earliest-finish"]
    assert ef["speedup"] >= FLEET_EF_SPEEDUP_MIN, (
        f"earliest-finish fleet only {ef['speedup']:.2f}x over reference "
        f"(need >= {FLEET_EF_SPEEDUP_MIN}x)"
    )

    record = {
        "benchmark": "core_admission",
        "methodology": (
            "capture-and-replay: a reference-engine simulation records its "
            "admission call stream; each engine replays the identical stream "
            "(best of REPRO_BENCH_REPLAY_REPS), so timings exclude the "
            "engine-independent event-loop overhead and outcomes are "
            "asserted identical across engines"
        ),
        "config": {
            "engines": list(ENGINES),
            "replay_reps": replay_reps(),
            "core": {
                "nodes": 16,
                "panel_loads": list(PANEL_LOADS),
                "gated_load": GATED_LOAD,
                "dc_ratio": 30.0,
                "total_time": core_total_time(),
                "seed": 2007,
                "algorithm": "EDF-DLT",
            },
            "deep_queue": {
                "nodes": 16,
                "load": GATED_LOAD,
                "dc_ratio": DEEP_QUEUE_DC_RATIO,
                "total_time": core_total_time(),
                "seed": 2007,
                "algorithm": "FIFO-DLT",
            },
            "fleet": {
                "clusters": 4,
                "nodes": 16,
                "cluster_spread": 0.8,
                "system_load": 3.0,
                "dc_ratio": 30.0,
                "total_time": fleet_total_time(),
                "seed": 2007,
                "algorithm": "EDF-DLT",
            },
        },
        "gates": {
            "core_speedup_min": CORE_SPEEDUP_MIN,
            "fleet_earliest_finish_speedup_min": FLEET_EF_SPEEDUP_MIN,
            "tracing_disabled_ratio_min": TRACING_DISABLED_RATIO_MIN,
            "ckpt_speedup_min": CKPT_SPEEDUP_MIN,
        },
        "core": RESULTS["core"],
        "throughput_panel": RESULTS["throughput_panel"],
        "fleet": {p: RESULTS["fleet"][p] for p in sorted(RESULTS["fleet"])},
    }
    if "deep_queue" in RESULTS:
        record["deep_queue"] = RESULTS["deep_queue"]
    if "tracing_overhead" in RESULTS:
        record["tracing_overhead"] = RESULTS["tracing_overhead"]
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert RECORD_PATH.exists()
