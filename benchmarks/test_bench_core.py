"""Benchmark — the fast admission engine against the reference walk.

Two workloads, both timed under the ``"fast"`` and ``"reference"``
admission engines with record-by-record identical outputs (asserted):

* **Core admission** — the paper's 16-node cluster under heavy load with
  loose deadlines, so the waiting queue runs deep and every arrival
  re-plans the whole queue: the admission test is essentially the entire
  runtime.  This is the ``≥ 5x`` headline number.
* **Fleet probing** — the documented 4-cluster ``cluster_spread=0.8``
  fleet (``docs/fleet.md``) under the probing ``earliest-finish`` router
  (one full admission test per member per arrival) and the ``round-robin``
  baseline.  Earliest-finish must gain ``≥ 2x``.

Emits ``BENCH_core.json`` at the repo root — the repo's second committed
perf record (after ``BENCH_fleet_routing.json``) and the baseline for the
CI perf regression gate (``scripts/check_perf.py``, see
``docs/performance.md``).  The gated quantities are the *speedups* (fast
over reference on the same machine and workload), which transfer across
machines; the absolute throughputs ride along for context.

Scale knobs (environment variables):

``REPRO_BENCH_CORE_TOTAL_TIME``
    Horizon of the core admission run (default 400,000).
``REPRO_BENCH_FLEET_TOTAL_TIME``
    Horizon per fleet run (default 100,000 — the documented config,
    shared with the fleet-routing benchmark).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.runner import simulate
from repro.fleet import FleetScenario, simulate_fleet
from repro.workload.scenario import Scenario

#: Where the perf record lands (repo root, next to BENCH_fleet_routing.json).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Gate thresholds, also embedded in the emitted record for the CI gate.
#: Overridable via environment so an *intentional*, reviewed perf trade
#: can lower them explicitly in the PR that makes the trade
#: (docs/performance.md); the defaults are this PR's acceptance floors.
CORE_SPEEDUP_MIN = float(os.environ.get("REPRO_BENCH_CORE_MIN_SPEEDUP", "5.0"))
FLEET_EF_SPEEDUP_MIN = float(
    os.environ.get("REPRO_BENCH_FLEET_MIN_SPEEDUP", "2.0")
)

#: Section name -> measured dict; flushed by test_emit_perf_record.
RESULTS: dict[str, dict] = {}


def core_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_CORE_TOTAL_TIME", "400000"))


def fleet_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_FLEET_TOTAL_TIME", "100000"))


def admission_heavy_scenario() -> Scenario:
    """16-node paper cluster, 3x overload, deadlines 30x the mean run.

    Loose deadlines keep rejected work rare enough that the waiting queue
    stays deep, so each arrival re-plans many tasks — the regime the fast
    engine's memoized prefix replay targets (and the regime a saturated
    production head node actually lives in).
    """
    return Scenario.paper_baseline(
        system_load=3.0,
        total_time=core_total_time(),
        seed=2007,
        dc_ratio=30.0,
        name="bench-core-admission",
    )


def documented_fleet() -> FleetScenario:
    """The docs/fleet.md headline configuration at bench scale."""
    return FleetScenario.uniform(
        n_clusters=4,
        system_load=0.6,
        total_time=fleet_total_time(),
        seed=2007,
        nodes=8,
        cluster_spread=0.8,
        name="bench-core-fleet",
    )


def _timed(fn, repeats: int = 2):
    """Best-of-``repeats`` wall time (jitter guard), plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _assert_identical_records(ref_records, fast_records) -> None:
    assert set(ref_records) == set(fast_records)
    for tid, ref_record in ref_records.items():
        assert ref_record == fast_records[tid]


@pytest.mark.benchmark(group="core-admission")
def test_bench_core_admission(benchmark):
    """Admission-heavy single cluster: fast vs reference engine."""
    scenario = admission_heavy_scenario()

    def run():
        ref, ref_seconds = _timed(
            lambda: simulate(scenario, "EDF-DLT", admission_engine="reference")
        )
        fast, fast_seconds = _timed(
            lambda: simulate(scenario, "EDF-DLT", admission_engine="fast")
        )
        return ref, ref_seconds, fast, fast_seconds

    ref, ref_seconds, fast, fast_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _assert_identical_records(ref.output.records, fast.output.records)
    stats = fast.output.stats
    # One "admission test" per arrival; each test places the newcomer plus
    # every waiting task, so placements = arrivals + replanned tasks.
    placements = stats.admission_tests + stats.replanned_tasks
    RESULTS["core"] = {
        "seconds_reference": ref_seconds,
        "seconds_fast": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "arrivals": stats.arrivals,
        "replanned_tasks": stats.replanned_tasks,
        "reject_ratio": stats.reject_ratio,
        "tasks_per_sec_reference": stats.arrivals / ref_seconds,
        "tasks_per_sec_fast": stats.arrivals / fast_seconds,
        "placements_per_sec_reference": placements / ref_seconds,
        "placements_per_sec_fast": placements / fast_seconds,
    }
    assert RESULTS["core"]["speedup"] >= CORE_SPEEDUP_MIN, (
        f"fast admission engine only {RESULTS['core']['speedup']:.2f}x over "
        f"reference (need >= {CORE_SPEEDUP_MIN}x)"
    )


@pytest.mark.benchmark(group="core-fleet")
@pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "earliest-finish"])
def test_bench_fleet_probe_throughput(benchmark, policy):
    """Fleet routing: per-policy fast vs reference engine."""
    base = documented_fleet().with_policy(policy)

    def run():
        ref, ref_seconds = _timed(
            lambda: simulate_fleet(base, "EDF-DLT", admission_engine="reference")
        )
        fast, fast_seconds = _timed(
            lambda: simulate_fleet(base, "EDF-DLT", admission_engine="fast")
        )
        return ref, ref_seconds, fast, fast_seconds

    ref, ref_seconds, fast, fast_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert ref.assignments == fast.assignments
    for ref_out, fast_out in zip(ref.outputs, fast.outputs):
        _assert_identical_records(ref_out.records, fast_out.records)
    routed = len(fast.assignments)
    RESULTS.setdefault("fleet", {})[policy] = {
        "seconds_reference": ref_seconds,
        "seconds_fast": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "routed_tasks": routed,
        "tasks_per_sec_reference": routed / ref_seconds,
        "tasks_per_sec_fast": routed / fast_seconds,
        "reject_ratio": fast.reject_ratio,
    }


def test_emit_perf_record():
    """Write BENCH_core.json and enforce the headline speedups."""
    if "core" not in RESULTS or len(RESULTS.get("fleet", {})) < 3:
        pytest.skip("benchmark sections did not all run")

    ef = RESULTS["fleet"]["earliest-finish"]
    assert ef["speedup"] >= FLEET_EF_SPEEDUP_MIN, (
        f"earliest-finish fleet only {ef['speedup']:.2f}x over reference "
        f"(need >= {FLEET_EF_SPEEDUP_MIN}x)"
    )

    record = {
        "benchmark": "core_admission",
        "config": {
            "core": {
                "nodes": 16,
                "system_load": 3.0,
                "dc_ratio": 30.0,
                "total_time": core_total_time(),
                "seed": 2007,
                "algorithm": "EDF-DLT",
            },
            "fleet": {
                "clusters": 4,
                "nodes": 8,
                "cluster_spread": 0.8,
                "system_load": 0.6,
                "total_time": fleet_total_time(),
                "seed": 2007,
                "algorithm": "EDF-DLT",
            },
        },
        "gates": {
            "core_speedup_min": CORE_SPEEDUP_MIN,
            "fleet_earliest_finish_speedup_min": FLEET_EF_SPEEDUP_MIN,
        },
        "core": RESULTS["core"],
        "fleet": {p: RESULTS["fleet"][p] for p in sorted(RESULTS["fleet"])},
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert RECORD_PATH.exists()
