"""Section 5.2 aggregate table — DLT vs User-Split over a config grid.

Paper (330 simulations): User-Split wins only 8.22% of the time; when
DLT wins it wins big (avg gain 0.121), when User-Split wins it wins small
(avg gain 0.016).  This bench reruns the study on a reduced grid and
prints the same summary rows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_reps, bench_total_time
from repro.experiments.sec52 import default_grid, render_win_stats, run_win_stats


@pytest.mark.benchmark(group="sec52")
@pytest.mark.parametrize("policy", ["EDF", "FIFO"])
def test_sec52_win_stats(benchmark, policy):
    stats = benchmark.pedantic(
        run_win_stats,
        args=(default_grid(),),
        kwargs=dict(
            policy=policy,
            replications=bench_reps(),
            total_time=bench_total_time(),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_win_stats(stats, policy=policy))
    # Shape: DLT wins the clear majority of configurations...
    assert stats.dlt_wins > stats.user_split_wins
    # ...and when it wins, its average gain dominates User-Split's.
    if stats.user_split_wins:
        assert stats.dlt_gain_avg_max_min[0] >= stats.user_split_gain_avg_max_min[0]
