"""Figure 16 — DLT-Based vs User-Split: Cps and DCRatio effects (FIFO).

Paper: FIFO mirror of Figure 14.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig16")
@pytest.mark.parametrize(
    "panel", ["fig16a", "fig16b", "fig16c", "fig16d", "fig16e", "fig16f"]
)
def test_fig16_cps_effects(benchmark, panel_runner, panel):
    panel_runner(
        benchmark, panel, extra_check=lambda r: assert_dlt_no_worse(r, tol=0.06)
    )


@pytest.mark.benchmark(group="fig16")
@pytest.mark.parametrize("panel", ["fig16g", "fig16h"])
def test_fig16_loose_deadlines(benchmark, panel_runner, panel):
    result = panel_runner(benchmark, panel)
    a1, a2 = result.spec.algorithms
    assert result.mean_gap(a1, a2) > -0.05
