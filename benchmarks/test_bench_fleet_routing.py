"""Benchmark — static vs adaptive routing on the documented 4-cluster fleet.

Times every routing policy (the four static routers and the three
``repro.learn`` bandits) on the documented heterogeneous fleet
(``docs/fleet.md``: 4 × 8 nodes, ``cluster_spread=0.8``, per-cluster
load 0.6) and emits ``BENCH_fleet_routing.json`` at the repo root — the
repo's first committed perf record, so future PRs can diff routing-layer
cost against a baseline instead of guessing.

Scale knobs (environment variables):

``REPRO_BENCH_FLEET_TOTAL_TIME``
    Horizon per run (default 100,000 — the documented configuration).
``REPRO_BENCH_FLEET_CLUSTERS``
    Member clusters (default 4).

Shape checks ride along: the adaptive policies must not cost more than a
small multiple of the most expensive static policy (they mostly delegate
to it), and every reject ratio must be a valid ratio.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.fleet import FleetScenario, routing_policy_names, simulate_fleet
from repro.learn import learning_policy_names

#: Where the perf record lands (repo root, next to README.md).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet_routing.json"

#: policy -> {"seconds": ..., "reject_ratio": ...}; filled by the
#: parametrized benchmark below, flushed by test_emit_perf_record.
RESULTS: dict[str, dict[str, float]] = {}


def fleet_total_time() -> float:
    return float(os.environ.get("REPRO_BENCH_FLEET_TOTAL_TIME", "100000"))


def fleet_clusters() -> int:
    return int(os.environ.get("REPRO_BENCH_FLEET_CLUSTERS", "4"))


def documented_fleet() -> FleetScenario:
    """The docs/fleet.md headline configuration at bench scale."""
    return FleetScenario.uniform(
        n_clusters=fleet_clusters(),
        system_load=0.6,
        total_time=fleet_total_time(),
        seed=2007,
        nodes=8,
        cluster_spread=0.8,
        name="bench-fleet",
    )


@pytest.mark.benchmark(group="fleet-routing")
@pytest.mark.parametrize("policy", routing_policy_names())
def test_bench_routing_policy(benchmark, policy):
    base = documented_fleet()

    def run():
        t0 = time.perf_counter()
        out = simulate_fleet(base.with_policy(policy), "EDF-DLT")
        return out, time.perf_counter() - t0

    out, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 <= out.reject_ratio <= 1.0
    RESULTS[policy] = {
        "seconds": seconds,
        "reject_ratio": out.reject_ratio,
        "learning_regret": out.metrics.learning_regret,
        "adaptive": float(out.learning is not None),
    }


def test_emit_perf_record():
    """Write BENCH_fleet_routing.json and check the static/adaptive shape."""
    if len(RESULTS) < len(routing_policy_names()):
        pytest.skip("per-policy benchmarks did not all run")

    adaptive = set(learning_policy_names())
    static_seconds = {p: r["seconds"] for p, r in RESULTS.items() if p not in adaptive}
    slowest_static = max(static_seconds.values())
    for policy in adaptive:
        # A bandit mostly delegates to its arms; its overhead on top of
        # the priciest arm (earliest-finish probes every member) must
        # stay a small constant factor, not a blow-up.
        assert RESULTS[policy]["seconds"] <= 5.0 * max(slowest_static, 0.01), (
            f"{policy} costs {RESULTS[policy]['seconds']:.3f}s vs slowest "
            f"static {slowest_static:.3f}s"
        )

    record = {
        "benchmark": "fleet_routing",
        "config": {
            "clusters": fleet_clusters(),
            "nodes": 8,
            "cluster_spread": 0.8,
            "system_load": 0.6,
            "total_time": fleet_total_time(),
            "seed": 2007,
            "algorithm": "EDF-DLT",
        },
        "policies": {p: RESULTS[p] for p in sorted(RESULTS)},
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert RECORD_PATH.exists()
