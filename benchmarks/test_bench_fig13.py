"""Figure 13 — DLT-Based vs User-Split: Avgσ effects (EDF).

Paper: at the tight baseline DCRatio = 2, EDF-DLT dominates
EDF-UserSplit across Avgσ ∈ {100, 200, 400, 800}.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("panel", ["fig13a", "fig13b", "fig13c", "fig13d"])
def test_fig13_avg_sigma_effects(benchmark, panel_runner, panel):
    panel_runner(
        benchmark, panel, extra_check=lambda r: assert_dlt_no_worse(r, tol=0.06)
    )
