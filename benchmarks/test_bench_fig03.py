"""Figure 3 — Benefits of Utilizing IITs (baseline, EDF).

Paper: EDF-DLT always at or below EDF-OPR-MN across SystemLoad 0.1-1.0 on
the baseline cluster (N=16, Cms=1, Cps=100, Avgσ=200, DCRatio=2);
Figure 3b repeats the run with 95% confidence intervals.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_dlt_no_worse


@pytest.mark.benchmark(group="fig3")
def test_fig3a(benchmark, panel_runner):
    panel_runner(benchmark, "fig3a", extra_check=assert_dlt_no_worse)


@pytest.mark.benchmark(group="fig3")
def test_fig3b(benchmark, panel_runner):
    result = panel_runner(benchmark, "fig3b", extra_check=assert_dlt_no_worse)
    # Figure 3b's point: every mean comes with a finite 95% CI.
    for alg in result.spec.algorithms:
        for p in result.series[alg]:
            assert p.ci.half_width >= 0.0
            assert p.ci.confidence == pytest.approx(0.95)
